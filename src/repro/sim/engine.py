"""Cycle-driven simulation engine (the PeerSim substitute).

Semantics match PeerSim's cycle-driven mode, which the paper's
evaluation uses: in every round, each protocol layer lets every alive
node execute one active gossip cycle, in a fresh random order per layer
per round.  Scheduled events (catastrophic failures, reinjection) fire
at the *start* of their round, before any layer runs — so a failure at
round 20 means round 20 already executes on the post-failure network,
as in the paper's timeline.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..errors import SimulationError
from ..obs import mem as obs_mem
from ..obs import metrics as obs_metrics
from ..obs import series as obs_series
from ..obs import trace as obs_trace
from ..spaces.base import Space
from ..types import Coord, DataPoint, NodeId
from . import rng as rng_mod
from .network import Network, SimNode
from .transport import MessageMeter

_perf_counter = obs_metrics._perf_counter

Event = Callable[["Simulation"], None]

#: Version of the *simulation semantics*: bump it in the same change
#: that intentionally alters any round-by-round trajectory (an RNG draw
#: added or removed, an iteration order changed, a float expression
#: reassociated).  The golden-digest tests (``tests/test_golden_digests``)
#: fail on any such change, intended or not; bumping this constant
#: invalidates every phase-fork checkpoint cache
#: (:class:`repro.runtime.forksweep.CheckpointCache` keys on it), so
#: stale pre-change prefixes are recomputed instead of silently forked.
SEMANTICS_VERSION = 1


def semantics_version_for(engine: str = "event") -> int:
    """The semantics version an execution engine runs under.

    The event engine is version :data:`SEMANTICS_VERSION`; the batch
    engine (:mod:`repro.sim.batch`) declares its own.  Checkpoint-cache
    keys and golden digests are engine-scoped through this mapping, so a
    batch prefix can never be forked into an event continuation (or vice
    versa) by way of a cache hit.
    """
    if engine in (None, "event"):
        return SEMANTICS_VERSION
    if engine == "batch":
        from .batch import SEMANTICS_VERSION as BATCH_SEMANTICS_VERSION

        return BATCH_SEMANTICS_VERSION
    raise ValueError(f"unknown execution engine {engine!r}")


class Layer(Protocol):
    """A protocol layer stacked into the simulation.

    ``init_node`` attaches the layer's per-node state when a node joins
    (at construction time or via reinjection).  ``step`` runs one round
    of the layer over the whole network.
    """

    name: str

    def init_node(self, sim: "Simulation", node: SimNode) -> None: ...

    def step(self, sim: "Simulation") -> None: ...


class Observer(Protocol):
    """Called after every completed round with the simulation state."""

    def on_round_end(self, sim: "Simulation") -> None: ...


class Simulation:
    """Drives a stack of layers over a network, round by round."""

    #: Retention policy for crashed nodes: when set, a node that has
    #: been dead (and therefore detector-visible) for this many rounds
    #: is forgotten entirely at the end of the round —
    #: :meth:`~repro.sim.network.Network.remove_node` recycles its table
    #: row, so perpetual-churn runs hold peak-population state instead
    #: of total-churn state.  Must exceed the failure-detection delay by
    #: at least two rounds so every ghost recovery has already fired
    #: (the scenario config validates this).  Class attribute so
    #: checkpoints taken before the policy existed restore cleanly.
    retention_rounds: Optional[int] = None

    def __init__(
        self,
        space: Space,
        network: Network,
        layers: Sequence[Layer],
        seed: int = 0,
        observers: Sequence[Observer] = (),
    ) -> None:
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate layer names: {names}")
        self.space = space
        self.network = network
        self.layers: List[Layer] = list(layers)
        self.seed = int(seed)
        self.observers: List[Observer] = list(observers)
        self.meter = MessageMeter()
        self.round: int = 0
        self._events: Dict[int, List[Event]] = defaultdict(list)
        #: One independent RNG substream per layer, plus one for the
        #: engine itself (event ordering, node spawning).
        self._rngs: Dict[str, random.Random] = {
            layer.name: rng_mod.spawn(self.seed, "layer", layer.name)
            for layer in layers
        }
        self._engine_rng = rng_mod.spawn(self.seed, "engine")
        self._detected: frozenset = frozenset()
        self._detected_key: Optional[tuple] = None
        self._detected_rows: Optional[np.ndarray] = None
        self._detected_rows_key: Optional[tuple] = None

    # -- setup -----------------------------------------------------------

    def rng_for(self, layer_name: str) -> random.Random:
        """The dedicated RNG substream of a layer."""
        if layer_name not in self._rngs:
            self._rngs[layer_name] = rng_mod.spawn(self.seed, "layer", layer_name)
        return self._rngs[layer_name]

    def init_all_nodes(self) -> None:
        """Run every layer's per-node initialisation over the current
        network.  Call once after the initial population is created."""
        for layer in self.layers:
            for node in self.network.alive_nodes():
                layer.init_node(self, node)

    def spawn_node(
        self, pos: Coord, initial_point: Optional[DataPoint] = None
    ) -> SimNode:
        """Add a fresh node mid-run and initialise it in every layer —
        the reinjection primitive (Sec. IV-A, Phase 3)."""
        node = self.network.add_node(pos, initial_point)
        for layer in self.layers:
            layer.init_node(self, node)
        return node

    def schedule(self, rnd: int, event: Event) -> None:
        """Register ``event`` to fire at the start of round ``rnd``."""
        if rnd < self.round:
            raise SimulationError(
                f"cannot schedule an event at past round {rnd} (now {self.round})"
            )
        self._events[rnd].append(event)

    # -- helpers used by layers -------------------------------------------

    def shuffled_alive(self, layer_name: str) -> List[NodeId]:
        """Alive node ids in a fresh random order (one gossip cycle's
        activation order for a layer)."""
        ids = list(self.network.alive_ids())
        self.rng_for(layer_name).shuffle(ids)
        return ids

    def detects_failed(self, nid: NodeId) -> bool:
        return nid in self.detected_failed()

    def departed(self) -> Callable[[NodeId], bool]:
        """Membership test for ids a layer must treat as failed and
        detected: the detector's current set plus ids already forgotten
        by the retention policy (a pruned id has no table row and was
        detector-visible for the whole retention window).  The single
        scalar source of the released-ids-count-as-detected rule — the
        array mirror is :meth:`detected_mask`."""
        detected = self.detected_failed()
        network = self.network
        if not network.table._has_released:
            return detected.__contains__
        nodes = network.nodes
        return lambda nid: nid in detected or nid not in nodes

    def detected_failed(self) -> frozenset:
        """The set of node ids the failure detector currently reports
        as failed.  Detection only depends on the round and on the
        membership, so the set is cached per (round, membership) — the
        fast path for the eviction scans in the gossip layers."""
        network = self.network
        key = (self.round, len(network._alive), len(network.nodes))
        if self._detected_key != key:
            network = self.network
            rnd = self.round
            self._detected = frozenset(
                nid
                for nid in network.dead_ids()
                if network.detector.detects(network, nid, rnd)
            )
            self._detected_key = key
        return self._detected

    def detected_mask(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised form of :meth:`detects_failed` over an id array —
        the fast path for the per-view eviction scans in the gossip
        layers."""
        key = (self.round, self.network.n_alive, self.network.n_total)
        # ``getattr``: simulations restored from pre-array checkpoints
        # may lack the cache attributes.
        if getattr(self, "_detected_rows_key", None) != key:
            table = self.network.table
            mask = np.zeros(table.n_rows, dtype=bool)
            for nid in self.detected_failed():
                mask[table.row(nid)] = True
            self._detected_rows = mask
            self._detected_rows_key = key
        if len(ids) == 0:
            return np.zeros(0, dtype=bool)
        table = self.network.table
        rows = table.rows_of(ids)
        if not table._has_released or rows.min() >= 0:
            return self._detected_rows[rows]
        # Released (pruned) ids have no row; they are long-detected.
        out = np.ones(len(ids), dtype=bool)
        valid = rows >= 0
        out[valid] = self._detected_rows[rows[valid]]
        return out

    # -- main loop ---------------------------------------------------------

    def step(self) -> int:
        """Run one full round; returns the index of the completed round.

        Instrumentation (per-round and per-layer wall time, the meter's
        per-layer message costs) is read-only and gated on one
        module-global check per round, so the disabled path stays within
        the perf-smoke overhead budget and trajectories are identical
        with observability on or off.
        """
        enabled = obs_metrics.ENABLED
        tracing = obs_trace.ENABLED
        series_on = enabled and obs_series.ENABLED
        layer_walls: Dict[str, float] = {}
        round_span = (
            obs_trace.Span("round", {"round": self.round})
            if tracing
            else obs_trace.NULL_SPAN
        )
        with round_span:
            t_round = _perf_counter() if enabled else 0.0
            if enabled and obs_mem.ENABLED:
                obs_mem.set_round(self.round)
            for event in self._events.pop(self.round, []):
                event(self)
            for layer in self.layers:
                t_layer = _perf_counter() if enabled else 0.0
                if tracing:
                    with obs_trace.Span(f"layer.{layer.name}", {}):
                        layer.step(self)
                else:
                    layer.step(self)
                if enabled:
                    dur = _perf_counter() - t_layer
                    obs_metrics.observe(f"round.layer.{layer.name}", dur)
                    if series_on:
                        layer_walls[layer.name] = dur
            completed = self.round
            layer_costs = self.meter.end_round()
            t_obs = _perf_counter() if enabled else 0.0
            for observer in self.observers:
                observer.on_round_end(self)
            if enabled:
                obs_metrics.observe("round.observers", _perf_counter() - t_obs)
            pruned = 0
            if self.retention_rounds is not None:
                pruned = len(
                    self.network.prune_dead(completed - self.retention_rounds)
                )
            self.round += 1
            if enabled:
                obs_metrics.count("rounds", 1)
                for layer_name, units in layer_costs.items():
                    obs_metrics.count(f"messages.{layer_name}", units)
                wall = _perf_counter() - t_round
                obs_metrics.observe("round.wall", wall)
                if series_on:
                    obs_series.emit_round(
                        self, completed, wall, layer_walls, layer_costs, pruned
                    )
        return completed

    def run(self, rounds: int) -> None:
        """Run ``rounds`` additional rounds."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        for _ in range(rounds):
            self.step()
