"""Simulation observers: per-round hooks for metrics and snapshots."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..types import Coord
from .engine import Simulation


class CallbackObserver:
    """Adapts a plain callable into an observer."""

    def __init__(self, callback: Callable[[Simulation], None]) -> None:
        self._callback = callback

    def on_round_end(self, sim: Simulation) -> None:
        self._callback(sim)


class PositionSnapshotter:
    """Records every alive node's advertised position at chosen rounds.

    This is the data behind the paper's scatter-plot figures (1, 8, 9):
    a snapshot of where the overlay's nodes sit on the shape.
    """

    def __init__(self, rounds: Sequence[int]) -> None:
        self.rounds = set(int(r) for r in rounds)
        self.snapshots: Dict[int, List[Coord]] = {}

    def on_round_end(self, sim: Simulation) -> None:
        if sim.round in self.rounds:
            self.snapshots[sim.round] = [
                node.pos for node in sim.network.alive_nodes()
            ]


class AliveCountObserver:
    """Tracks the alive-node population over time."""

    def __init__(self) -> None:
        self.counts: List[int] = []

    def on_round_end(self, sim: Simulation) -> None:
        self.counts.append(sim.network.n_alive)
