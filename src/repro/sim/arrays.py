"""Struct-of-arrays storage for the simulation core.

Two containers back the array-based hot path introduced with the
vectorised space kernels (:meth:`repro.spaces.base.Space.distance_block`
and friends):

* :class:`NodeTable` — the network's node state as contiguous NumPy
  columns (coordinates, alive flags, death rounds) plus an id → row
  index.  :class:`~repro.sim.network.SimNode` objects are thin views
  over one row; batch consumers (ranking, metrics) read whole columns
  without touching Python objects.  Rows of nodes that have been
  *removed* (crash-stop nodes pruned after every reference to them has
  aged out) go onto a free list and are reused by the next node added —
  long-churn runs with reinjection reuse slots instead of growing
  without bound.

* :class:`ViewBuffer` — the per-layer topology *view slot*: an
  insertion-ordered id → coordinate map whose packed id/coordinate
  arrays are rebuilt lazily after mutations.  It reproduces ``dict``
  semantics exactly — iteration order is insertion order, updating an
  existing key keeps its position, re-inserting a removed key appends —
  so the gossip layers draw the same RNG sequences they drew over plain
  dicts, while every ranking between two mutations reads the same
  packed arrays instead of re-converting the view entry by entry.

Both containers deep-copy and pickle cleanly, which the checkpoint
subsystem relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..obs import mem as _mem
from ..types import Coord, NodeId

#: Coordinate-layout marker for spaces whose coordinates are not
#: fixed-size float vectors (e.g. the Jaccard set space).
OBJECT_DIM = "object"

_GROW = 2.0
_MIN_CAP = 8


def _grown(capacity: int, needed: int) -> int:
    new = max(_MIN_CAP, capacity)
    while new < needed:
        new = int(new * _GROW)
    return new


class NodeTable:
    """Contiguous struct-of-arrays node state.

    The coordinate layout is fixed by the first node added: a tuple/list
    coordinate of length ``d`` selects a float64 ``(n, d)`` column,
    anything else (frozensets, arbitrary hashables) selects object
    storage.  The canonical per-node coordinate object (the exact tuple
    or frozenset handed in) is kept alongside the arrays so ``pos``
    reads return the same objects scalar code always saw.
    """

    def __init__(self) -> None:
        self._dim: Optional[Union[int, str]] = None
        self._coords: Optional[np.ndarray] = None  # (cap, dim) in vector mode
        self._alive = np.zeros(_MIN_CAP, dtype=bool)
        self._death = np.full(_MIN_CAP, -1, dtype=np.int64)
        self._row_of = np.full(_MIN_CAP, -1, dtype=np.int64)  # nid -> row
        self._nid_of = np.full(_MIN_CAP, -1, dtype=np.int64)  # row -> nid
        self._pos_cache: List = []  # row -> canonical coordinate object
        self._free: List[int] = []
        self._n_rows = 0
        #: Set once a node id has ever been released: only then can an
        #: id map to row -1, so the gather fast paths skip the
        #: validity scan until it can matter.
        self._has_released = False

    # -- layout ----------------------------------------------------------

    @property
    def dim(self) -> Optional[Union[int, str]]:
        return self._dim

    @property
    def is_vector(self) -> bool:
        return isinstance(self._dim, int)

    @property
    def n_rows(self) -> int:
        """Number of allocated rows (including dead nodes' rows)."""
        return self._n_rows

    @property
    def free_rows(self) -> List[int]:
        """Rows currently on the free list (read-only snapshot)."""
        return list(self._free)

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing arrays (the memory-profiler's
        accounting hook; capacity, not just occupied rows)."""
        total = (
            self._alive.nbytes
            + self._death.nbytes
            + self._row_of.nbytes
            + self._nid_of.nbytes
        )
        if self._coords is not None:
            total += self._coords.nbytes
        return total

    def _ensure_layout(self, coord: Coord) -> None:
        if self._dim is not None:
            return
        if isinstance(coord, (tuple, list)) and all(
            isinstance(c, (int, float, np.floating, np.integer)) for c in coord
        ):
            self._dim = len(coord)
            self._coords = np.empty((_MIN_CAP, self._dim), dtype=float)
            if _mem.ENABLED:
                _mem.add("node_table", "NodeTable.rows", self._coords.nbytes)
        else:
            self._dim = OBJECT_DIM
            self._coords = None

    def _grow_rows(self, needed: int) -> None:
        cap = len(self._alive)
        if needed <= cap:
            return
        before = self.nbytes if _mem.ENABLED else 0
        new_cap = _grown(cap, needed)
        self._alive = np.concatenate(
            [self._alive, np.zeros(new_cap - cap, dtype=bool)]
        )
        self._death = np.concatenate(
            [self._death, np.full(new_cap - cap, -1, dtype=np.int64)]
        )
        self._nid_of = np.concatenate(
            [self._nid_of, np.full(new_cap - cap, -1, dtype=np.int64)]
        )
        if self._coords is not None:
            grown = np.empty((new_cap, self._coords.shape[1]), dtype=float)
            grown[:cap] = self._coords
            self._coords = grown
        if _mem.ENABLED:
            _mem.add("node_table", "NodeTable.rows", self.nbytes - before)

    def _grow_ids(self, nid: NodeId) -> None:
        cap = len(self._row_of)
        if nid < cap:
            return
        new_cap = _grown(cap, nid + 1)
        self._row_of = np.concatenate(
            [self._row_of, np.full(new_cap - cap, -1, dtype=np.int64)]
        )
        if _mem.ENABLED:
            _mem.add("node_table", "NodeTable.row_of", (new_cap - cap) * 8)

    # -- membership ------------------------------------------------------

    def add(self, nid: NodeId, coord: Coord) -> int:
        """Register a node; returns its row (reusing a freed row when
        one is available)."""
        self._ensure_layout(coord)
        self._grow_ids(nid)
        if self._row_of[nid] != -1:
            raise SimulationError(f"node id {nid} already registered")
        if self._free:
            row = self._free.pop()
        else:
            row = self._n_rows
            self._grow_rows(row + 1)
            self._n_rows += 1
            if len(self._pos_cache) <= row:
                self._pos_cache.extend(
                    [None] * (row + 1 - len(self._pos_cache))
                )
        self._row_of[nid] = row
        self._nid_of[row] = nid
        self._alive[row] = True
        self._death[row] = -1
        self.set_coord(row, coord)
        return row

    def set_coord(self, row: int, coord: Coord) -> None:
        """Write a node's coordinate (array column + canonical object)."""
        if self._coords is not None:
            self._coords[row] = coord
            if not isinstance(coord, tuple):
                coord = tuple(coord)
        self._pos_cache[row] = coord

    def pos(self, row: int) -> Coord:
        """The canonical coordinate object of a row."""
        return self._pos_cache[row]

    def mark_dead(self, row: int, rnd: int) -> None:
        self._alive[row] = False
        self._death[row] = rnd

    def release(self, nid: NodeId) -> int:
        """Forget a *dead* node entirely and recycle its row.

        The caller is responsible for making sure no view still
        references the id; the freed row is handed to the next
        :meth:`add` (reinjection reuse).
        """
        row = int(self._row_of[nid])
        if row < 0:
            raise SimulationError(f"unknown node id {nid}")
        if self._alive[row]:
            raise SimulationError(f"cannot release alive node {nid}")
        self._row_of[nid] = -1
        self._nid_of[row] = -1
        self._death[row] = -1
        self._pos_cache[row] = None
        self._free.append(row)
        self._has_released = True
        return row

    # -- batch reads -----------------------------------------------------

    def rows_of(self, ids: np.ndarray) -> np.ndarray:
        """Row indices for an array of node ids (-1 for released ids;
        callers gathering per-row state must mask those out — see
        :meth:`alive_mask`)."""
        return self._row_of[ids]

    def row(self, nid: NodeId) -> int:
        return int(self._row_of[nid])

    def is_alive_row(self, row: int) -> bool:
        return bool(self._alive[row])

    def alive_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which of the given node ids are alive.

        Ids of *released* (removed) nodes map to no row and report
        dead — a view that still holds a pruned id must treat it like
        any other departed peer, not alias another node's row."""
        if len(ids) == 0:
            return np.zeros(0, dtype=bool)
        rows = self._row_of[ids]
        if not self._has_released or rows.min() >= 0:
            return self._alive[rows]
        out = np.zeros(len(ids), dtype=bool)
        valid = rows >= 0
        out[valid] = self._alive[rows[valid]]
        return out

    def alive_rows(self) -> np.ndarray:
        """Bool column over allocated rows (do not mutate)."""
        return self._alive[: self._n_rows]

    def death_rounds(self) -> np.ndarray:
        return self._death[: self._n_rows]

    def coords_rows(self) -> Optional[np.ndarray]:
        """The raw coordinate block over allocated rows (vector mode
        only; do not mutate)."""
        if self._coords is None:
            return None
        return self._coords[: self._n_rows]

    def gather(self, ids: np.ndarray):
        """Current true coordinates of the given node ids, as an
        ``(n, dim)`` array in vector mode or a list of coordinate
        objects otherwise."""
        rows = self._row_of[ids]
        if self._coords is not None:
            return self._coords[rows]
        return [self._pos_cache[r] for r in rows]

    def gather_rows(self, rows: Sequence[int]):
        if self._coords is not None:
            return self._coords[np.asarray(rows, dtype=np.int64)]
        return [self._pos_cache[r] for r in rows]


class ViewBuffer:
    """Insertion-ordered id → coordinate map with a packed array cache.

    The gossip layers' views are mutation-heavy (every exchange merges
    ~20 descriptors) *and* rank-heavy (every exchange ranks the view
    several times).  The buffer therefore keeps a plain dict as the
    source of truth — mutations run at C dict speed and iteration order
    is exactly the historical dict order, so RNG draw sequences are
    unchanged — and lazily packs the ids and coordinates into
    contiguous arrays the first time a ranking kernel asks after a
    mutation.  A view that is ranked several times between mutations
    (partner selection, the two exchange buffers) pays for one pack.

    The mapping protocol mirrors ``dict`` (tests and the routing layer
    treat views as mappings); bulk helpers cover the layers' hot
    mutation patterns so the per-descriptor work stays inside one
    method call.
    """

    __slots__ = ("coords", "_dim", "_ids_arr", "_coords_arr", "_dirty", "_ranked_pos")

    def __init__(
        self,
        dim: Union[int, str],
        entries: Iterable[Tuple[NodeId, Coord]] = (),
    ) -> None:
        self._dim = dim
        self.coords: Dict[NodeId, Coord] = dict(entries)
        self._ids_arr: Optional[np.ndarray] = None
        self._coords_arr = None
        self._dirty = True
        #: The origin object this view is currently *sorted for* (set by
        #: the ranked truncations, compared by identity).  While it is
        #: the node's live position object, ranked prefixes of the view
        #: replace distance kernels entirely; any mutation that can
        #: break the sort order clears it (order-preserving evictions
        #: keep it).
        self._ranked_pos = None

    @property
    def dim(self) -> Union[int, str]:
        return self._dim

    @property
    def ranked_pos(self):
        """The origin object the view is sorted for, or None."""
        return self._ranked_pos

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed array cache (the memory-profiler's
        accounting hook; the source-of-truth dict is not counted)."""
        total = 0
        if self._ids_arr is not None:
            total += self._ids_arr.nbytes
        if isinstance(self._coords_arr, np.ndarray):
            total += self._coords_arr.nbytes
        return total

    # -- mapping protocol (dict-compatible) ------------------------------

    def __len__(self) -> int:
        return len(self.coords)

    def __bool__(self) -> bool:
        return bool(self.coords)

    def __iter__(self):
        return iter(self.coords)

    def __contains__(self, nid) -> bool:
        return nid in self.coords

    def __getitem__(self, nid) -> Coord:
        return self.coords[nid]

    def __setitem__(self, nid: NodeId, coord: Coord) -> None:
        self.coords[nid] = coord
        self._dirty = True
        self._ranked_pos = None

    def __delitem__(self, nid: NodeId) -> None:
        del self.coords[nid]
        self._dirty = True

    def get(self, nid, default=None):
        return self.coords.get(nid, default)

    def keys(self):
        return self.coords.keys()

    def values(self):
        return self.coords.values()

    def items(self):
        return self.coords.items()

    def ids_list(self) -> List[NodeId]:
        return list(self.coords)

    # -- packed arrays (the ranking hot path) ----------------------------

    def arrays(self):
        """``(ids, coords)`` in insertion order: an int64 array and a
        packed coordinate batch ((n, dim) float array in vector mode, a
        list of coordinate objects otherwise).  Rebuilt lazily after
        mutations; do not mutate the returned arrays."""
        if self._dirty:
            before = self.nbytes if _mem.ENABLED else 0
            n = len(self.coords)
            self._ids_arr = np.fromiter(
                self.coords.keys(), dtype=np.int64, count=n
            )
            if isinstance(self._dim, int):
                self._coords_arr = np.asarray(
                    list(self.coords.values()), dtype=float
                ).reshape(n, self._dim)
            else:
                self._coords_arr = list(self.coords.values())
            self._dirty = False
            if _mem.ENABLED:
                _mem.add("view_buffer", "ViewBuffer.pack", self.nbytes - before)
        return self._ids_arr, self._coords_arr

    # -- bulk mutation helpers (one method call per hot pattern) ---------

    def evict(self, detected) -> None:
        """Drop every entry whose id is in ``detected`` (a set)."""
        coords = self.coords
        stale = [nid for nid in coords if nid in detected]
        if stale:
            for nid in stale:
                del coords[nid]
            self._dirty = True

    def evict_ids(self, stale: Sequence[NodeId]) -> None:
        """Drop the given entries (caller already computed the stale
        set, e.g. from a vectorised liveness mask)."""
        if stale:
            coords = self.coords
            for nid in stale:
                del coords[nid]
            self._dirty = True

    def merge_coords(self, incoming: Dict[NodeId, Coord], own: NodeId, detected) -> None:
        """The T-Man merge rule: adopt every incoming descriptor except
        our own id and detected-failed peers; fresher coordinates
        overwrite stored ones."""
        coords = self.coords
        changed = False
        for nid, coord in incoming.items():
            if nid == own or nid in detected:
                continue
            coords[nid] = coord
            changed = True
        if changed:
            self._dirty = True
            self._ranked_pos = None

    def keep_ranked(self, keep: Sequence[NodeId], ranked_for=None) -> None:
        """Rebuild holding exactly ``keep``, in that order — the array
        form of ``{nid: view[nid] for nid in keep}`` (T-Man's bounded-
        view truncation).  ``ranked_for`` records the origin object the
        order was computed against."""
        coords = self.coords
        self.coords = {nid: coords[nid] for nid in keep}
        self._dirty = True
        self._ranked_pos = ranked_for

    def set_ranked(self, keep_ids: np.ndarray, coords_arr, ranked_for=None) -> None:
        """:meth:`keep_ranked` for a caller that already holds the
        kept ids and their packed coordinate rows (a ranking it just
        computed): the packed cache is installed directly instead of
        being rebuilt on the next ranking."""
        old = self.coords
        self.coords = {nid: old[nid] for nid in keep_ids.tolist()}
        self._ids_arr = keep_ids
        self._coords_arr = coords_arr
        self._dirty = False
        self._ranked_pos = ranked_for

    def replace(self, entries: Dict[NodeId, Coord]) -> None:
        self.coords = dict(entries)
        self._dirty = True
        self._ranked_pos = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ViewBuffer(n={len(self.coords)}, dim={self._dim})"
