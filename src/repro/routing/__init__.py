"""Greedy geographic routing over the overlay — the application-level
consequence of shape (non-)preservation the paper's intro motivates."""

from .greedy import RouteResult, greedy_route
from .quality import RoutingQuality, evaluate_routing, point_targets

__all__ = [
    "greedy_route",
    "RouteResult",
    "evaluate_routing",
    "RoutingQuality",
    "point_targets",
]
