"""Network-wide routing-quality evaluation.

Samples (source node, target coordinate) pairs and reports delivery
rate and path length.  Routing *to the original data points* is the
application-level view of homogeneity: a key is reachable only if some
node still sits near it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.engine import Simulation
from ..spaces.base import Space
from ..types import Coord, DataPoint
from .greedy import greedy_route


@dataclass
class RoutingQuality:
    """Aggregate routing statistics over a sample of routes."""

    delivery_rate: float
    mean_hops_delivered: float
    local_minimum_rate: float
    n_routes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "delivery_rate": self.delivery_rate,
            "mean_hops_delivered": self.mean_hops_delivered,
            "local_minimum_rate": self.local_minimum_rate,
            "n_routes": float(self.n_routes),
        }


def evaluate_routing(
    sim: Simulation,
    space: Space,
    targets: Sequence[Coord],
    n_routes: int = 100,
    tolerance: float = 1.0,
    rng: Optional[random.Random] = None,
    max_hops: Optional[int] = None,
) -> RoutingQuality:
    """Route ``n_routes`` messages from random alive sources to random
    targets and aggregate the outcomes."""
    if not targets:
        raise ValueError("evaluate_routing needs at least one target")
    rng = rng or random.Random(0)
    alive = sim.network.alive_nodes()
    if not alive:
        raise ValueError("routing is undefined on an empty network")
    delivered = 0
    stuck = 0
    hops: List[int] = []
    for _ in range(n_routes):
        source = rng.choice(alive)
        target = rng.choice(targets)
        result = greedy_route(
            sim, space, source, target, tolerance=tolerance, max_hops=max_hops
        )
        if result.success:
            delivered += 1
            hops.append(result.hops)
        elif result.reason == "local-minimum":
            stuck += 1
    return RoutingQuality(
        delivery_rate=delivered / n_routes,
        mean_hops_delivered=sum(hops) / len(hops) if hops else float("nan"),
        local_minimum_rate=stuck / n_routes,
        n_routes=n_routes,
    )


def point_targets(points: Sequence[DataPoint]) -> List[Coord]:
    """The coordinates of the original data points, as routing targets
    (route-to-key semantics)."""
    return [point.coord for point in points]
