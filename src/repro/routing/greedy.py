"""Greedy geographic routing over the constructed overlay.

The paper's introduction motivates shape preservation by its effect on
routing: overlays "often rel[y] on a uniform distribution of nodes
along the topology" for routing efficiency (Sec. I).  This module makes
that claim measurable: classic greedy routing (as in CAN) forwards a
message to the view neighbour closest to the target coordinate, and
fails when it reaches a local minimum — which is exactly what happens
at the rim of the hole a catastrophic failure tears into the shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..spaces.base import Space
from ..types import Coord, NodeId


@dataclass
class RouteResult:
    """Outcome of one greedy route."""

    #: The route *delivered*: it stopped within ``tolerance`` of the
    #: target coordinate.
    success: bool
    hops: int
    #: Node ids visited, origin first.
    path: List[NodeId] = field(default_factory=list)
    #: Distance between the final node and the target.
    final_distance: float = float("inf")
    #: Why the route ended: "delivered", "local-minimum" or "max-hops".
    reason: str = ""


def greedy_route(
    sim: Simulation,
    space: Space,
    start: SimNode,
    target: Coord,
    tolerance: float = 1.0,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Route greedily from ``start`` towards ``target``.

    At each hop the message moves to the alive view neighbour strictly
    closer to the target than the current node; it stops with success
    as soon as some node within ``tolerance`` of the target is reached,
    and with failure on a local minimum (no closer neighbour) or after
    ``max_hops`` hops (default: network size, i.e. effectively
    unbounded).
    """
    if max_hops is None:
        max_hops = sim.network.n_alive
    # Batch-engine simulations keep views in array state; materialise
    # them onto the nodes once so the hop walk below reads fresh views.
    sync = getattr(sim, "sync_canonical", None)
    if sync is not None:
        sync()
    current = start
    current_dist = space.distance(current.pos, target)
    path = [current.nid]
    alive = sim.network.alive_view()
    for hop in range(max_hops):
        if current_dist <= tolerance:
            return RouteResult(True, hop, path, current_dist, "delivered")
        view = getattr(current, "tman_view", None) or {}
        best_id: Optional[NodeId] = None
        best_dist = current_dist
        for nid in view:
            if nid not in alive:
                continue
            dist = space.distance(sim.network.node(nid).pos, target)
            if dist < best_dist:
                best_dist = dist
                best_id = nid
        if best_id is None:
            return RouteResult(False, hop, path, current_dist, "local-minimum")
        current = sim.network.node(best_id)
        current_dist = best_dist
        path.append(best_id)
    if current_dist <= tolerance:
        return RouteResult(True, max_hops, path, current_dist, "delivered")
    return RouteResult(False, max_hops, path, current_dist, "max-hops")
