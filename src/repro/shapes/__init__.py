"""Target shape samplers.

Shapes produce the initial data points whose union *is* the topology the
system must preserve.  :class:`TorusGrid` is the paper's evaluation
shape; the others exercise Polystyrene's shape-agnosticism.
"""

from .base import Shape
from .disk import AnnulusShape, DiskShape
from .grid import TorusGrid
from .line import LineShape
from .random_cloud import RandomCloud
from .ring import RingShape

__all__ = [
    "Shape",
    "TorusGrid",
    "RingShape",
    "LineShape",
    "DiskShape",
    "AnnulusShape",
    "RandomCloud",
]
