"""Regular grids on a flat torus — the paper's evaluation shape."""

from __future__ import annotations

from typing import List, Tuple

from ..spaces.torus import FlatTorus
from ..types import Coord
from .base import Shape


class TorusGrid(Shape):
    """A ``width x height`` regular grid wrapped on a flat torus.

    ``TorusGrid(80, 40)`` with ``step=1`` is the paper's 3,200-node
    logical torus; nodes sit at integer coordinates and the distance
    between grid neighbours is 1.

    The ``offset`` shifts the whole grid, which is how the reinjection
    phase places fresh nodes "on a grid parallel to the original one"
    (Sec. IV-A, Phase 3).
    """

    def __init__(
        self,
        width: int,
        height: int,
        step: float = 1.0,
        offset: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("grid dimensions must be >= 1")
        if step <= 0:
            raise ValueError("grid step must be positive")
        self.width = int(width)
        self.height = int(height)
        self.step = float(step)
        self.offset = (float(offset[0]), float(offset[1]))

    @property
    def periods(self) -> Tuple[float, float]:
        """Torus periods implied by the grid (width*step, height*step)."""
        return (self.width * self.step, self.height * self.step)

    def space(self) -> FlatTorus:
        """The :class:`FlatTorus` this grid lives on."""
        return FlatTorus(*self.periods)

    @property
    def area(self) -> float:
        px, py = self.periods
        return px * py

    @property
    def size(self) -> int:
        return self.width * self.height

    def generate(self) -> List[Coord]:
        ox, oy = self.offset
        px, py = self.periods
        return [
            ((x * self.step + ox) % px, (y * self.step + oy) % py)
            for x in range(self.width)
            for y in range(self.height)
        ]

    def parallel(self, fraction: float = 0.5) -> "TorusGrid":
        """A same-size grid shifted by ``fraction`` of a step on both
        axes — the reinjection grid of Phase 3."""
        shift = self.step * fraction
        return TorusGrid(
            self.width,
            self.height,
            self.step,
            offset=(self.offset[0] + shift, self.offset[1] + shift),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TorusGrid({self.width}x{self.height}, step={self.step:g}, "
            f"offset={self.offset})"
        )
