"""Ring shape: points evenly spaced around a circle space."""

from __future__ import annotations

from typing import List

from ..spaces.ring import Ring
from ..types import Coord
from .base import Shape


class RingShape(Shape):
    """``n`` points evenly spaced on a 1-D ring.

    The canonical DHT layout (Chord/Pastry key rings).  The "area" of a
    1-D shape is its length, so the reference homogeneity becomes
    ``0.5 * circumference / n`` scaled by the square-root law; for 1-D
    shapes we use the exact 1-D bound ``0.5 * circumference / n``
    instead, which is the tight analogue.
    """

    def __init__(self, n: int, circumference: float = None) -> None:
        if n < 1:
            raise ValueError("a ring shape needs n >= 1")
        self.n = int(n)
        # Default circumference n keeps inter-node spacing at 1, matching
        # the torus grid's unit step.
        self.circumference = float(circumference) if circumference else float(n)

    def space(self) -> Ring:
        return Ring(self.circumference)

    @property
    def area(self) -> float:
        return self.circumference

    @property
    def size(self) -> int:
        return self.n

    def generate(self) -> List[Coord]:
        spacing = self.circumference / self.n
        return [(i * spacing,) for i in range(self.n)]

    def reference_homogeneity(self, n_nodes: int = None) -> float:
        if n_nodes is None:
            n_nodes = self.n
        if n_nodes <= 0:
            raise ValueError("reference homogeneity needs n_nodes >= 1")
        # 1-D: each node covers a segment of length area/n; the farthest
        # point within a segment is half the segment away.
        return 0.5 * self.area / n_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RingShape(n={self.n}, circumference={self.circumference:g})"
