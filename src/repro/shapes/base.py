"""Target shapes.

A *shape* defines the initial data points of a deployment: "The original
positions of all nodes in the system define the target shape that the
system should maintain" (Sec. III-A).  A shape therefore only needs to
produce coordinates (and, for the reference-homogeneity computation, the
measure of the region it covers).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional

from ..types import Coord


class Shape(ABC):
    """A generator of initial positions in some metric space."""

    @abstractmethod
    def generate(self) -> List[Coord]:
        """Return the full list of initial data-point coordinates."""

    @property
    @abstractmethod
    def area(self) -> float:
        """Measure of the region the shape covers (used by the
        reference homogeneity ``H = 0.5 * sqrt(area / n_nodes)``)."""

    @property
    def size(self) -> int:
        """Number of points the shape generates."""
        return len(self.generate())

    def reference_homogeneity(self, n_nodes: Optional[int] = None) -> float:
        """The paper's ideal-distribution bound ``H^{|N|}_A``.

        With ``|N|`` nodes uniformly covering an area ``A``, each node
        owns a zone of diameter about ``sqrt(A/|N|)``, so every data
        point sits within ``0.5 * sqrt(A/|N|)`` of a node (Sec. IV-A).
        """
        if n_nodes is None:
            n_nodes = self.size
        if n_nodes <= 0:
            raise ValueError("reference homogeneity needs n_nodes >= 1")
        return 0.5 * math.sqrt(self.area / n_nodes)
