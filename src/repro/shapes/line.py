"""Line segment shape in the Euclidean plane."""

from __future__ import annotations

from typing import List, Tuple

from ..spaces.euclidean import Euclidean
from ..types import Coord
from .base import Shape


class LineShape(Shape):
    """``n`` points evenly spaced on a straight segment in R^2."""

    def __init__(
        self,
        n: int,
        start: Tuple[float, float] = (0.0, 0.0),
        end: Tuple[float, float] = (1.0, 0.0),
    ) -> None:
        if n < 1:
            raise ValueError("a line shape needs n >= 1")
        if tuple(start) == tuple(end):
            raise ValueError("line endpoints must differ")
        self.n = int(n)
        self.start = (float(start[0]), float(start[1]))
        self.end = (float(end[0]), float(end[1]))

    def space(self) -> Euclidean:
        return Euclidean(dim=2)

    @property
    def length(self) -> float:
        dx = self.end[0] - self.start[0]
        dy = self.end[1] - self.start[1]
        return (dx * dx + dy * dy) ** 0.5

    @property
    def area(self) -> float:
        # 1-D measure: the segment length.
        return self.length

    @property
    def size(self) -> int:
        return self.n

    def generate(self) -> List[Coord]:
        if self.n == 1:
            return [self.start]
        pts = []
        for i in range(self.n):
            t = i / (self.n - 1)
            pts.append(
                (
                    self.start[0] + t * (self.end[0] - self.start[0]),
                    self.start[1] + t * (self.end[1] - self.start[1]),
                )
            )
        return pts

    def reference_homogeneity(self, n_nodes: int = None) -> float:
        if n_nodes is None:
            n_nodes = self.n
        if n_nodes <= 0:
            raise ValueError("reference homogeneity needs n_nodes >= 1")
        return 0.5 * self.length / n_nodes
