"""Filled disk and annulus shapes in the Euclidean plane.

Dense 2-D shapes used by the examples and the shape-generality tests:
Polystyrene should reform *any* shape, not just the evaluation torus.
Points are laid out on a sunflower (Fibonacci) spiral, which gives a
near-uniform deterministic covering of a disk.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..spaces.euclidean import Euclidean
from ..types import Coord
from .base import Shape

_GOLDEN_ANGLE = math.pi * (3.0 - math.sqrt(5.0))


class DiskShape(Shape):
    """``n`` points covering a filled disk of a given radius."""

    def __init__(
        self, n: int, radius: float = 1.0, center: Tuple[float, float] = (0.0, 0.0)
    ) -> None:
        if n < 1:
            raise ValueError("a disk shape needs n >= 1")
        if radius <= 0:
            raise ValueError("disk radius must be positive")
        self.n = int(n)
        self.radius = float(radius)
        self.center = (float(center[0]), float(center[1]))

    def space(self) -> Euclidean:
        return Euclidean(dim=2)

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    @property
    def size(self) -> int:
        return self.n

    def generate(self) -> List[Coord]:
        cx, cy = self.center
        pts: List[Coord] = []
        for i in range(self.n):
            r = self.radius * math.sqrt((i + 0.5) / self.n)
            theta = i * _GOLDEN_ANGLE
            pts.append((cx + r * math.cos(theta), cy + r * math.sin(theta)))
        return pts


class AnnulusShape(Shape):
    """``n`` points covering a ring-with-thickness (annulus)."""

    def __init__(
        self,
        n: int,
        inner_radius: float,
        outer_radius: float,
        center: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if n < 1:
            raise ValueError("an annulus shape needs n >= 1")
        if not 0 <= inner_radius < outer_radius:
            raise ValueError("need 0 <= inner_radius < outer_radius")
        self.n = int(n)
        self.inner_radius = float(inner_radius)
        self.outer_radius = float(outer_radius)
        self.center = (float(center[0]), float(center[1]))

    def space(self) -> Euclidean:
        return Euclidean(dim=2)

    @property
    def area(self) -> float:
        return math.pi * (self.outer_radius**2 - self.inner_radius**2)

    @property
    def size(self) -> int:
        return self.n

    def generate(self) -> List[Coord]:
        cx, cy = self.center
        r_in_sq = self.inner_radius**2
        r_out_sq = self.outer_radius**2
        pts: List[Coord] = []
        for i in range(self.n):
            # Uniform-in-area radius between the two circles.
            frac = (i + 0.5) / self.n
            r = math.sqrt(r_in_sq + frac * (r_out_sq - r_in_sq))
            theta = i * _GOLDEN_ANGLE
            pts.append((cx + r * math.cos(theta), cy + r * math.sin(theta)))
        return pts
