"""Random point clouds, for stress tests and irregular-shape scenarios."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..spaces.euclidean import Euclidean
from ..spaces.torus import FlatTorus
from ..types import Coord
from .base import Shape


class RandomCloud(Shape):
    """``n`` points drawn uniformly from an axis-aligned box.

    Deterministic given ``seed``.  With ``torus=True`` the box is
    interpreted as the fundamental cell of a flat torus.
    """

    def __init__(
        self,
        n: int,
        bounds: Sequence[Tuple[float, float]] = ((0.0, 1.0), (0.0, 1.0)),
        seed: int = 0,
        torus: bool = False,
    ) -> None:
        if n < 1:
            raise ValueError("a random cloud needs n >= 1")
        self.n = int(n)
        self.bounds = tuple((float(lo), float(hi)) for lo, hi in bounds)
        if any(hi <= lo for lo, hi in self.bounds):
            raise ValueError("every bound must satisfy lo < hi")
        self.seed = int(seed)
        self.torus = bool(torus)
        self._points: List[Coord] = self._sample()

    def _sample(self) -> List[Coord]:
        rng = np.random.default_rng(self.seed)
        cols = [rng.uniform(lo, hi, size=self.n) for lo, hi in self.bounds]
        return [tuple(float(col[i]) for col in cols) for i in range(self.n)]

    def space(self):
        if self.torus:
            return FlatTorus(*(hi - lo for lo, hi in self.bounds))
        return Euclidean(dim=len(self.bounds))

    @property
    def area(self) -> float:
        area = 1.0
        for lo, hi in self.bounds:
            area *= hi - lo
        return area

    @property
    def size(self) -> int:
        return self.n

    def generate(self) -> List[Coord]:
        return list(self._points)
