"""Structured JSONL event logging.

One event is one JSON object on one line::

    {"kind": "event", "ts": "...", "level": "info", "event":
     "queue.claim", "run_id": "...", "worker": "...", **fields}

Events carry *bound context*: :func:`bind` pushes run/worker/cell
identifiers into a :mod:`contextvars` var, and every event emitted
under that binding inherits them — so a worker binds once per cell and
all queue/checkpoint/engine events from that cell carry the cell's
coordinates.  Context is a contextvar (not a global) so the cluster
worker's heartbeat thread logs under its own binding without racing the
drain loop.

Two sinks, both optional:

* **stderr** — human-scannable ``LEVEL event k=v ...`` lines, gated by
  the configured level (``REPRO_LOG`` / ``--log-level``).
* **events.jsonl** — the machine-readable stream under the configured
  obs dir (``REPRO_OBS_DIR`` / ``--obs-dir``), appended one
  ``O_APPEND`` write per event so concurrent workers interleave whole
  lines.  ``repro obs tail`` reads this file.

Disabled path (the default): :data:`LEVEL` is :data:`OFF`, so
``obs.log.debug(...)`` is one integer compare.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

# Numeric levels, matching stdlib logging's ordering coarsely.
DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40
OFF = 100

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_NAME_LEVELS = {v: k for k, v in _LEVEL_NAMES.items()}
_NAME_LEVELS["warn"] = WARNING
_NAME_LEVELS["off"] = OFF
_NAME_LEVELS["none"] = OFF

#: Current stderr threshold.  Events below it skip the stderr sink;
#: the JSONL sink (when an obs dir is configured) records everything
#: at DEBUG and above regardless, so the on-disk stream is complete
#: even when the console is quiet.
LEVEL = OFF

#: Path of the events.jsonl sink, or None when no obs dir is active.
_EVENTS_PATH: Optional[Path] = None

_CONTEXT: contextvars.ContextVar[Dict[str, Any]] = contextvars.ContextVar(
    "repro_obs_log_context", default={}
)

_stderr_lock = threading.Lock()


def parse_level(name: Union[str, int, None]) -> int:
    """``"debug"``/``"info"``/... → numeric level (unknown → OFF)."""
    if name is None:
        return OFF
    if isinstance(name, int):
        return name
    return _NAME_LEVELS.get(str(name).strip().lower(), OFF)


def level_name(level: int) -> str:
    return _LEVEL_NAMES.get(level, str(level))


def set_level(level: Union[str, int, None]) -> None:
    global LEVEL
    LEVEL = parse_level(level)


def set_events_path(path: Union[str, Path, None]) -> None:
    global _EVENTS_PATH
    _EVENTS_PATH = Path(path) if path is not None else None


def events_path() -> Optional[Path]:
    return _EVENTS_PATH


def active() -> bool:
    """Whether any sink would record an event right now."""
    return LEVEL < OFF or _EVENTS_PATH is not None


# -- context binding ---------------------------------------------------------


class _Binding:
    """Token-restoring context manager returned by :func:`bind`."""

    __slots__ = ("_token",)

    def __init__(self, token: contextvars.Token) -> None:
        self._token = token

    def __enter__(self) -> "_Binding":
        return self

    def __exit__(self, *exc) -> bool:
        _CONTEXT.reset(self._token)
        return False


def bind(**fields: Any) -> _Binding:
    """Merge ``fields`` into the logging context for the current
    (thread/task) execution context.  Usable as a context manager to
    restore the previous binding on exit, or fire-and-forget for
    process-lifetime context (a worker's identity)."""
    merged = dict(_CONTEXT.get())
    merged.update(fields)
    return _Binding(_CONTEXT.set(merged))


def context() -> Dict[str, Any]:
    """The currently bound context fields (a copy)."""
    return dict(_CONTEXT.get())


# -- emission ----------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def emit(level: int, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Emit one structured event through the active sinks; returns the
    record, or None when no sink is active."""
    to_stderr = level >= LEVEL
    to_file = _EVENTS_PATH is not None
    if not (to_stderr or to_file):
        return None
    record: Dict[str, Any] = {
        "kind": "event",
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "level": level_name(level),
        "event": event,
    }
    record.update(_CONTEXT.get())
    for key, value in fields.items():
        record[key] = _json_safe(value)
    if to_file:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=repr)
        try:
            fd = os.open(
                _EVENTS_PATH, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, (line + "\n").encode("utf8"))
            finally:
                os.close(fd)
        except OSError:  # pragma: no cover - sink failure must not kill runs
            pass
    if to_stderr:
        parts = [
            f"{key}={record[key]}"
            for key in record
            if key not in ("kind", "ts", "level", "event")
        ]
        with _stderr_lock:
            print(
                f"[repro {record['level']}] {event} " + " ".join(parts),
                file=sys.stderr,
            )
    return record


def debug(event: str, **fields: Any) -> None:
    if LEVEL <= DEBUG or _EVENTS_PATH is not None:
        emit(DEBUG, event, **fields)


def info(event: str, **fields: Any) -> None:
    if LEVEL <= INFO or _EVENTS_PATH is not None:
        emit(INFO, event, **fields)


def warning(event: str, **fields: Any) -> None:
    if LEVEL <= WARNING or _EVENTS_PATH is not None:
        emit(WARNING, event, **fields)


def error(event: str, **fields: Any) -> None:
    emit(ERROR, event, **fields)
