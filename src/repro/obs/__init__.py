"""``repro.obs`` — zero-dependency observability for the reproduction.

Three cooperating pieces, all stdlib-only:

* :mod:`repro.obs.log` — structured JSONL event logging with bound
  run/worker/cell context (``obs.log.info("queue.claim", task=...)``).
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms with timer context managers, instrumented at
  the hot seams of both engines and the cluster runtime, flushed as
  single-write JSONL lines.
* :mod:`repro.obs.profiling` — ``--profile`` support: cProfile + peak
  RSS / array-bytes sampling → ``obs/profile.json``.
* :mod:`repro.obs.trace` — causal spans with cross-process parent
  propagation, emitted to ``obs/spans.jsonl``; the ``repro obs trace``
  / ``export`` / ``diff`` analysis surfaces read them back.
* :mod:`repro.obs.series` — one compact record per simulation round
  (wall/layer/kernel time, message/exchange/SPLIT counts, node counts,
  periodic health probes) in ``obs/series.jsonl``; ``repro obs
  series`` / ``watch`` read it back.
* :mod:`repro.obs.mem` — a byte ledger at the allocation chokepoints
  (table/view growth, padded kernel buffers, checkpoint blobs) feeding
  per-family bytes into the series and a peak-attribution snapshot
  into ``obs/mem.json`` (``repro obs mem``).

Configuration flows through :func:`configure` (what the CLI flags call)
and is mirrored into environment variables so ``ParallelRunner`` child
processes — under fork *or* spawn — and cluster workers inherit it:

========================  ====================================================
``REPRO_LOG``             stderr log level: ``debug``/``info``/``warning``/
                          ``error`` (unset/``off`` = silent)
``REPRO_OBS_DIR``         run directory; artifacts land in ``<dir>/obs/``
                          (``events.jsonl``, ``metrics.jsonl``,
                          ``profile.json``).  Setting it enables metrics.
``REPRO_OBS``             ``1`` forces metrics collection on even with no
                          obs dir (snapshots only, nothing written)
``REPRO_PROFILE``         ``1`` arms the profiler (cProfile + memory
                          sampling) in every process of the run
``REPRO_TRACE_CTX``       ``<trace_id>:<span_id>`` — the parent span a
                          child process's spans attach under, so a
                          distributed sweep stitches into one trace tree
``REPRO_OBS_RESERVOIR``   histogram percentile reservoir size (default
                          64; must be >= 1)
``REPRO_OBS_SERIES_EVERY``  rounds between domain health probes in the
                          per-round series (default 10; must be >= 1)
========================  ====================================================

Everything is off by default: no files are written, and the
instrumented seams cost one global check each (CI gates the disabled
path at ≤2% on ``perf_smoke.py``).  Instrumentation is read-only —
no RNG draws, no iteration-order changes — so trajectories and golden
digests are bit-identical with observability on or off.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from . import log, mem, metrics, profiling, series, trace

ENV_LOG = "REPRO_LOG"
ENV_OBS_DIR = "REPRO_OBS_DIR"
ENV_OBS = "REPRO_OBS"
ENV_PROFILE = "REPRO_PROFILE"

#: The configured run directory (``None`` = no artifacts).
_RUN_DIR: Optional[Path] = None


def run_dir() -> Optional[Path]:
    return _RUN_DIR


def obs_dir() -> Optional[Path]:
    """``<run_dir>/obs``, or None when no run dir is configured."""
    return _RUN_DIR / "obs" if _RUN_DIR is not None else None


def metrics_path() -> Optional[Path]:
    d = obs_dir()
    return d / "metrics.jsonl" if d is not None else None


def profile_path() -> Optional[Path]:
    d = obs_dir()
    return d / "profile.json" if d is not None else None


def spans_path() -> Optional[Path]:
    d = obs_dir()
    return d / "spans.jsonl" if d is not None else None


def series_path() -> Optional[Path]:
    d = obs_dir()
    return d / "series.jsonl" if d is not None else None


def mem_path() -> Optional[Path]:
    d = obs_dir()
    return d / "mem.json" if d is not None else None


def profiling_active() -> bool:
    return profiling.ACTIVE


def configure(
    log_level: Optional[str] = None,
    dir: Optional[Union[str, Path]] = None,
    profile: Optional[bool] = None,
    enable_metrics: Optional[bool] = None,
    export_env: bool = True,
) -> None:
    """Apply observability settings for this process (and, via env vars,
    every child process it launches).

    ``None`` arguments leave the corresponding setting untouched, so
    callers can layer CLI flags over an inherited environment.
    """
    global _RUN_DIR
    if log_level is not None:
        log.set_level(log_level)
        if export_env:
            os.environ[ENV_LOG] = str(log_level)
    if dir is not None:
        _RUN_DIR = Path(dir)
        d = obs_dir()
        try:
            d.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass
        log.set_events_path(d / "events.jsonl")
        trace.set_spans_path(d / "spans.jsonl")
        trace.set_enabled(True)
        series.set_series_path(d / "series.jsonl")
        series.set_enabled(True)
        mem.set_enabled(True)
        if export_env:
            os.environ[ENV_OBS_DIR] = str(_RUN_DIR)
    if profile is not None:
        profiling.set_active(bool(profile))
        if export_env:
            os.environ[ENV_PROFILE] = "1" if profile else ""
    if enable_metrics is not None:
        metrics.set_enabled(bool(enable_metrics))
        if export_env:
            os.environ[ENV_OBS] = "1" if enable_metrics else ""
    # Metrics collection follows any sink or profiler unless explicitly
    # forced: an obs dir or an armed profiler needs numbers to report.
    if enable_metrics is None and (_RUN_DIR is not None or profiling.ACTIVE):
        metrics.set_enabled(True)


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> None:
    """Adopt settings from the environment — how ``ParallelRunner``
    children and cluster workers (fork or spawn) pick up the parent's
    configuration.  Called at import, and again by child entry points
    that may run under ``spawn``."""
    env = os.environ if environ is None else environ
    level = env.get(ENV_LOG)
    dir_ = env.get(ENV_OBS_DIR)
    profile = env.get(ENV_PROFILE)
    force = env.get(ENV_OBS)
    configure(
        log_level=level if level else None,
        dir=dir_ if dir_ else None,
        profile=bool(profile) if profile else None,
        enable_metrics=True if force else None,
        export_env=False,
    )
    # Spawn-mode children re-join the parent's trace through the
    # exported span context (fork-mode children inherit the contextvar
    # directly; adopting the same token again is harmless).
    if env.get(trace.ENV_CTX):
        trace.adopt_env(env)


def reset_for_cell(**ctx: Any):
    """Start a fresh per-cell metrics scope in a worker process: clears
    the registry, series delta baselines, and memory ledger, and binds
    the cell's identity into the log context.  Returns the
    (token-restoring) log binding."""
    metrics.registry().reset()
    series.reset_cell()
    mem.reset()
    return log.bind(**ctx)


def flush_cell_metrics(ctx: Optional[Dict[str, Any]] = None) -> Optional[Dict[str, Any]]:
    """Snapshot this process's registry, append it to the run's
    ``metrics.jsonl`` (when a run dir is configured), and return the
    snapshot for embedding in the cell's result record.  No-op (None)
    when metrics are disabled or nothing was recorded."""
    if not metrics.ENABLED:
        return None
    reg = metrics.registry()
    if reg.is_empty():
        return None
    snap = reg.snapshot()
    path = metrics_path()
    if path is not None:
        merged_ctx = dict(log.context())
        if ctx:
            merged_ctx.update(ctx)
        metrics.flush(path, ctx=merged_ctx, snapshot=snap)
    # Spans and series records buffer per process; draining them at the
    # same cadence keeps the streams fresh and bounds loss if a worker
    # dies mid-drain.  The memory ledger max-merges its attribution
    # snapshot into the run's mem.json at the same seam.
    trace.flush()
    series.flush()
    mp = mem_path()
    if mp is not None and mem.ENABLED:
        mem.write_snapshot(mp)
    return snap


# Child processes inherit configuration through the environment; the
# parent process is configured explicitly by the CLI before any child
# exists, so this import-time adoption is a no-op there.
configure_from_env()
