"""The metrics registry: counters, gauges, histograms, timers.

One process-wide :class:`MetricsRegistry` accumulates everything the
instrumented seams emit — per-round and per-kernel wall times, exchange
and message counts, checkpoint-cache hits, queue claims.  The module
functions (:func:`count`, :func:`observe`, :func:`gauge`,
:func:`timer`, :func:`timed`) are the call sites' fast path: when
observability is disabled (the default) each is a single module-global
check, so the instrumented code costs one branch per call — the
``perf_smoke.py --obs-gate`` CI gate holds the disabled path within 2%
of an uninstrumented build.

The registry is thread-safe (one lock around every mutation — the
cluster worker's heartbeat thread and its drain loop share the
process registry) and *process*-oblivious: every worker process owns
its own registry, resets it per cell, and flushes the snapshot as one
``O_APPEND`` JSONL line (:func:`flush`) — concurrent flushers interleave
whole lines, exactly like the result store's appends.

Snapshot schema (one flushed line)::

    {"kind": "metrics", "ts": "...", "ctx": {"run_id": ..., "task_id":
     ..., "worker": ..., "engine": ...}, "counters": {name: value},
     "gauges": {name: value}, "hists": {name: {"count": n, "sum": s,
     "min": lo, "max": hi, "mean": m, "p50": ..., "p95": ..., "p99":
     ..., "res": [bounded reservoir sample]}}}

Percentiles are estimated from a bounded reservoir (``res``) carried in
the snapshot so cross-process aggregation can re-estimate them;
count/sum/min/max/mean merge exactly, percentiles approximately.

The same histogram-snapshot shape is used by the per-cell ``metrics``
section in result-store cell records, by ``obs/profile.json`` and by
``BENCH_core.json`` benchmark timings, so ``repro obs report`` renders
any of them.
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import time
from functools import wraps
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from . import trace as _trace

#: The one global switch every instrumented seam checks before doing any
#: work.  Toggled by :func:`set_enabled` (which
#: :func:`repro.obs.configure` drives from ``REPRO_LOG`` / ``REPRO_OBS``
#: / CLI flags).  Read as a module attribute so hot loops pay one global
#: load + branch when observability is off.
ENABLED = False

_perf_counter = time.perf_counter
_time = time.time


def set_enabled(on: bool) -> None:
    """Flip the global instrumentation switch (both the module fast
    path and the default registry)."""
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


#: Environment knob for the percentile reservoir size.
ENV_RESERVOIR = "REPRO_OBS_RESERVOIR"

#: Reservoir size for approximate percentiles.  Small by default: 64
#: floats per histogram keeps flushed lines compact while p50/p95 stay
#: useful on the hundreds-to-thousands of observations a cell produces.
#: Raise it via ``REPRO_OBS_RESERVOIR`` (or :func:`set_reservoir_cap`)
#: when per-round latency tails need finer percentile resolution.
RESERVOIR_CAP = 64


def set_reservoir_cap(cap: int) -> None:
    """Set the percentile reservoir size (>= 1).  Applies to histograms
    created *and* merged after the call; existing reservoirs keep their
    samples and converge to the new bound on the next merge/observe."""
    global RESERVOIR_CAP
    cap = int(cap)
    if cap < 1:
        raise ValueError(
            f"histogram reservoir size must be >= 1, got {cap} "
            f"(check {ENV_RESERVOIR})"
        )
    RESERVOIR_CAP = cap


def _reservoir_cap_from_env(environ: Optional[Dict[str, str]] = None) -> int:
    """``REPRO_OBS_RESERVOIR`` → reservoir size (default 64), validated
    with a clear error naming the variable."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_RESERVOIR)
    if not raw:
        return 64
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_RESERVOIR} must be an integer >= 1, got {raw!r}"
        ) from None
    if cap < 1:
        raise ValueError(
            f"{ENV_RESERVOIR} must be an integer >= 1, got {raw!r}"
        )
    return cap


# Adopt the environment's reservoir size at import so worker processes
# (fork or spawn) inherit the parent's setting without replumbing.
set_reservoir_cap(_reservoir_cap_from_env())

#: Dedicated, deterministically-seeded RNG for reservoir sampling —
#: never the simulation's seeded streams and never the global
#: ``random`` state, so instrumentation stays trajectory-neutral.
_RESERVOIR_RNG = random.Random(0x0B5E7E5)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = int(math.ceil(q * len(sorted_values)))
    return sorted_values[min(len(sorted_values), max(1, rank)) - 1]


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean,
    plus approximate p50/p95/p99 from a bounded reservoir.

    ``count``/``sum``/``min``/``max`` (and therefore ``mean``) merge
    *exactly* across processes.  The percentiles come from an
    Algorithm-R reservoir of :data:`RESERVOIR_CAP` samples, so they are
    **approximate** — unbiased per process, and merged across processes
    by pooling + downsampling the reservoirs, which is approximate too.
    Good enough to see a p95 regression; not a substitute for the exact
    fields.
    """

    __slots__ = ("count", "sum", "min", "max", "res")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.res: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.res) < RESERVOIR_CAP:
            self.res.append(value)
        else:
            j = _RESERVOIR_RNG.randrange(self.count)
            if j < RESERVOIR_CAP:
                self.res[j] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        sample = sorted(self.res)
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": _percentile(sample, 0.50),
            "p95": _percentile(sample, 0.95),
            "p99": _percentile(sample, 0.99),
            "res": list(self.res),
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another histogram's snapshot into this one (the obs
        report aggregating many flushed lines).  Exact for
        count/sum/min/max/mean; reservoirs pool and downsample, so the
        merged percentiles are approximate."""
        n = int(snap.get("count", 0))
        if n <= 0:
            return
        self.count += n
        self.sum += float(snap.get("sum", 0.0))
        lo = float(snap.get("min", 0.0))
        hi = float(snap.get("max", 0.0))
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        incoming = snap.get("res")
        if incoming:
            self.res.extend(float(v) for v in incoming)
            if len(self.res) > RESERVOIR_CAP:
                # Downsample with a *freshly seeded* RNG so merging is a
                # deterministic function of the pooled sample: the same
                # flushed records always aggregate to the same
                # percentile estimates, whatever else drew from the
                # module RNG first (``repro obs diff`` of a run against
                # a byte-identical copy must be all zeros).
                self.res = random.Random(0x0B5E7E5).sample(
                    self.res, RESERVOIR_CAP
                )


class _Timer:
    """Context manager feeding one histogram observation per ``with``
    block.  Each :meth:`MetricsRegistry.timer` call returns a fresh
    instance, so nested/concurrent timings of the same name are
    independent observations."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._registry.observe(self._name, _perf_counter() - self._t0)
        return False


class _NullTimer:
    """The disabled-path timer: does nothing, allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Histogram] = {}

    # -- mutation --------------------------------------------------------

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the largest value seen (peak-RSS style gauges)."""
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.observe(value)

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (or a flushed metrics line) into this
        registry — the aggregation primitive ``repro obs report`` uses."""
        with self._lock:
            for name, value in (snap.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (snap.get("gauges") or {}).items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value
            for name, hsnap in (snap.get("hists") or {}).items():
                hist = self._hists.get(name)
                if hist is None:
                    hist = self._hists[name] = Histogram()
                hist.merge_snapshot(hsnap)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "hists": {
                    name: hist.snapshot() for name, hist in self._hists.items()
                },
            }

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def counters_prefixed(self, prefix: str) -> Dict[str, float]:
        """All counters whose name starts with ``prefix`` — the series
        emitter's per-round delta source (one locked scan per round)."""
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def hist_totals(self, prefix: str) -> Dict[str, Tuple[int, float]]:
        """``{name: (count, sum)}`` of every histogram whose name starts
        with ``prefix`` — exact cumulative totals, cheap to delta."""
        with self._lock:
            return {
                name: (hist.count, hist.sum)
                for name, hist in self._hists.items()
                if name.startswith(prefix)
            }

    def hist(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            h = self._hists.get(name)
            return h.snapshot() if h is not None else None

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._hists)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: The process-wide default registry every module-level helper feeds.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


# -- module-level fast paths (what instrumented code calls) ------------------


def count(name: str, n: Union[int, float] = 1) -> None:
    if ENABLED:
        _REGISTRY.count(name, n)


def gauge(name: str, value: float) -> None:
    if ENABLED:
        _REGISTRY.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    if ENABLED:
        _REGISTRY.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    if ENABLED:
        _REGISTRY.observe(name, value)


def timer(name: str):
    """A context manager timing its block into histogram ``name`` —
    :data:`NULL_TIMER` (free) when observability is off."""
    if not ENABLED:
        return NULL_TIMER
    return _Timer(_REGISTRY, name)


def timed(name: str) -> Callable:
    """Decorator timing every call of a kernel into histogram ``name``
    (the histogram's ``count`` doubles as the call counter).  When
    tracing is also on, each call additionally lands as a leaf span
    under the current trace context — the kernel tier of the trace
    tree rides this one seam.  Disabled path: one global check per
    call, the original function is kept on ``__wrapped__`` for the
    perf gate's vanilla baseline."""

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            start = _time() if _trace.ENABLED else 0.0
            t0 = _perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                dur = _perf_counter() - t0
                _REGISTRY.observe(name, dur)
                if _trace.ENABLED:
                    _trace.record(name, start, dur)

        wrapper.__obs_timed__ = name
        return wrapper

    return decorate


# -- flushing ----------------------------------------------------------------


def metrics_record(
    ctx: Optional[Dict[str, Any]] = None,
    snapshot: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One flushable metrics line (the schema documented above)."""
    snap = snapshot if snapshot is not None else _REGISTRY.snapshot()
    return {
        "kind": "metrics",
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "ctx": dict(ctx or {}),
        "counters": snap.get("counters", {}),
        "gauges": snap.get("gauges", {}),
        "hists": snap.get("hists", {}),
    }


def flush(
    path: Union[str, Path],
    ctx: Optional[Dict[str, Any]] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    reset: bool = False,
) -> Dict[str, Any]:
    """Append one metrics line to ``path`` as a single ``write()`` on an
    ``O_APPEND`` descriptor — process-safe the same way result-store
    appends are.  Returns the written record."""
    record = metrics_record(ctx=ctx, snapshot=snapshot)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, (line + "\n").encode("utf8"))
    finally:
        os.close(fd)
    if reset:
        _REGISTRY.reset()
    return record
