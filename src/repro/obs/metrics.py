"""The metrics registry: counters, gauges, histograms, timers.

One process-wide :class:`MetricsRegistry` accumulates everything the
instrumented seams emit — per-round and per-kernel wall times, exchange
and message counts, checkpoint-cache hits, queue claims.  The module
functions (:func:`count`, :func:`observe`, :func:`gauge`,
:func:`timer`, :func:`timed`) are the call sites' fast path: when
observability is disabled (the default) each is a single module-global
check, so the instrumented code costs one branch per call — the
``perf_smoke.py --obs-gate`` CI gate holds the disabled path within 2%
of an uninstrumented build.

The registry is thread-safe (one lock around every mutation — the
cluster worker's heartbeat thread and its drain loop share the
process registry) and *process*-oblivious: every worker process owns
its own registry, resets it per cell, and flushes the snapshot as one
``O_APPEND`` JSONL line (:func:`flush`) — concurrent flushers interleave
whole lines, exactly like the result store's appends.

Snapshot schema (one flushed line)::

    {"kind": "metrics", "ts": "...", "ctx": {"run_id": ..., "task_id":
     ..., "worker": ..., "engine": ...}, "counters": {name: value},
     "gauges": {name: value}, "hists": {name: {"count": n, "sum": s,
     "min": lo, "max": hi, "mean": m}}}

The same histogram-snapshot shape is used by the per-cell ``metrics``
section in result-store cell records, by ``obs/profile.json`` and by
``BENCH_core.json`` benchmark timings, so ``repro obs report`` renders
any of them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from functools import wraps
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

#: The one global switch every instrumented seam checks before doing any
#: work.  Toggled by :func:`set_enabled` (which
#: :func:`repro.obs.configure` drives from ``REPRO_LOG`` / ``REPRO_OBS``
#: / CLI flags).  Read as a module attribute so hot loops pay one global
#: load + branch when observability is off.
ENABLED = False

_perf_counter = time.perf_counter


def set_enabled(on: bool) -> None:
    """Flip the global instrumentation switch (both the module fast
    path and the default registry)."""
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean.

    Deliberately bucket-free — the instrumented quantities (wall times,
    byte sizes) are reported as breakdown tables, not quantile curves,
    and a five-number summary merges exactly across processes.
    """

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }

    def merge_snapshot(self, snap: Dict[str, float]) -> None:
        """Fold another histogram's snapshot into this one (the obs
        report aggregating many flushed lines)."""
        n = int(snap.get("count", 0))
        if n <= 0:
            return
        self.count += n
        self.sum += float(snap.get("sum", 0.0))
        lo = float(snap.get("min", 0.0))
        hi = float(snap.get("max", 0.0))
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi


class _Timer:
    """Context manager feeding one histogram observation per ``with``
    block.  Each :meth:`MetricsRegistry.timer` call returns a fresh
    instance, so nested/concurrent timings of the same name are
    independent observations."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._registry.observe(self._name, _perf_counter() - self._t0)
        return False


class _NullTimer:
    """The disabled-path timer: does nothing, allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Histogram] = {}

    # -- mutation --------------------------------------------------------

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the largest value seen (peak-RSS style gauges)."""
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.observe(value)

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (or a flushed metrics line) into this
        registry — the aggregation primitive ``repro obs report`` uses."""
        with self._lock:
            for name, value in (snap.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (snap.get("gauges") or {}).items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value
            for name, hsnap in (snap.get("hists") or {}).items():
                hist = self._hists.get(name)
                if hist is None:
                    hist = self._hists[name] = Histogram()
                hist.merge_snapshot(hsnap)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "hists": {
                    name: hist.snapshot() for name, hist in self._hists.items()
                },
            }

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def hist(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            h = self._hists.get(name)
            return h.snapshot() if h is not None else None

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._hists)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: The process-wide default registry every module-level helper feeds.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


# -- module-level fast paths (what instrumented code calls) ------------------


def count(name: str, n: Union[int, float] = 1) -> None:
    if ENABLED:
        _REGISTRY.count(name, n)


def gauge(name: str, value: float) -> None:
    if ENABLED:
        _REGISTRY.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    if ENABLED:
        _REGISTRY.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    if ENABLED:
        _REGISTRY.observe(name, value)


def timer(name: str):
    """A context manager timing its block into histogram ``name`` —
    :data:`NULL_TIMER` (free) when observability is off."""
    if not ENABLED:
        return NULL_TIMER
    return _Timer(_REGISTRY, name)


def timed(name: str) -> Callable:
    """Decorator timing every call of a kernel into histogram ``name``
    (the histogram's ``count`` doubles as the call counter).  Disabled
    path: one global check per call, the original function is kept on
    ``__wrapped__`` for the perf gate's vanilla baseline."""

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            t0 = _perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _REGISTRY.observe(name, _perf_counter() - t0)

        wrapper.__obs_timed__ = name
        return wrapper

    return decorate


# -- flushing ----------------------------------------------------------------


def metrics_record(
    ctx: Optional[Dict[str, Any]] = None,
    snapshot: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One flushable metrics line (the schema documented above)."""
    snap = snapshot if snapshot is not None else _REGISTRY.snapshot()
    return {
        "kind": "metrics",
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "ctx": dict(ctx or {}),
        "counters": snap.get("counters", {}),
        "gauges": snap.get("gauges", {}),
        "hists": snap.get("hists", {}),
    }


def flush(
    path: Union[str, Path],
    ctx: Optional[Dict[str, Any]] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    reset: bool = False,
) -> Dict[str, Any]:
    """Append one metrics line to ``path`` as a single ``write()`` on an
    ``O_APPEND`` descriptor — process-safe the same way result-store
    appends are.  Returns the written record."""
    record = metrics_record(ctx=ctx, snapshot=snapshot)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, (line + "\n").encode("utf8"))
    finally:
        os.close(fd)
    if reset:
        _REGISTRY.reset()
    return record
