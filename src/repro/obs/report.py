"""Reading and rendering observability artifacts.

``repro obs report <run-dir>`` aggregates every metrics line a run
flushed (sequential runs flush once, parallel/distributed runs flush
one line per cell per worker) into one registry, then renders the
per-phase / per-kernel / counter breakdown as aligned text tables.
``repro obs tail`` pretty-prints the last N lines of an
``events.jsonl`` / ``metrics.jsonl`` / ``spans.jsonl`` stream, and
``--follow`` turns that into a poll-based tail -f
(:func:`follow_stream`).  ``repro obs diff A B`` compares two runs'
aggregated timing histograms — metrics and per-span-name durations —
with noise floors, and with ``--gate`` turns regressions into a
nonzero exit (:func:`diff_runs`).

All readers use the result store's torn-line discipline: a trailing
line that does not parse is skipped (a writer may be mid-append), never
an error.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from ..viz.tables import format_table
from . import series as _series
from . import trace as _trace
from .metrics import MetricsRegistry, _percentile

#: Histogram-name prefixes rendered as their own report sections, in
#: display order.  Everything instrumented in-tree uses one of these.
SECTIONS = (
    ("round.", "Per-round phases"),
    ("kernel.", "Kernels"),
    ("queue.", "Queue operations"),
    ("cell.", "Cells"),
    ("bench.", "Benchmarks"),
)


def resolve_metrics_path(target: Union[str, Path]) -> Optional[Path]:
    """Locate the metrics stream for a target: a metrics/profile file
    itself, a run dir containing ``obs/metrics.jsonl``, or an obs dir
    containing ``metrics.jsonl``."""
    target = Path(target)
    if target.is_file():
        return target
    for candidate in (
        target / "obs" / "metrics.jsonl",
        target / "metrics.jsonl",
    ):
        if candidate.is_file():
            return candidate
    return None


def resolve_events_path(target: Union[str, Path]) -> Optional[Path]:
    """Locate the events stream for a target (same convention)."""
    target = Path(target)
    if target.is_file():
        return target
    for candidate in (
        target / "obs" / "events.jsonl",
        target / "events.jsonl",
    ):
        if candidate.is_file():
            return candidate
    return None


def load_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL stream, skipping unparseable lines (torn appends)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def load_metrics_records(target: Union[str, Path]) -> List[Dict[str, Any]]:
    """All metrics records reachable from ``target``: metrics.jsonl
    lines, a profile.json's embedded snapshot, or cell-record
    ``metrics`` sections when pointed at a results file."""
    path = resolve_metrics_path(target)
    if path is None:
        raise FileNotFoundError(
            f"no metrics stream found under {target} "
            "(expected obs/metrics.jsonl, metrics.jsonl, or a file path)"
        )
    if path.suffix == ".json":
        report = json.loads(path.read_text())
        snap = report.get("metrics", report)
        return [snap]
    records = load_jsonl(path)
    out = []
    for record in records:
        if record.get("kind") == "metrics" or "hists" in record or "counters" in record:
            out.append(record)
        elif "metrics" in record and isinstance(record["metrics"], dict):
            # A result-store cell record carrying a metrics section.
            out.append(record["metrics"])
    return out


def aggregate(records: Iterable[Dict[str, Any]]) -> MetricsRegistry:
    """Fold many metrics records into one registry (counters add,
    gauges keep the max, histograms merge)."""
    registry = MetricsRegistry()
    for record in records:
        registry.merge_snapshot(record)
    return registry


def _hist_rows(hists: Dict[str, Dict[str, float]], prefix: str) -> List[List]:
    rows = []
    for name in sorted(hists):
        if not name.startswith(prefix):
            continue
        h = hists[name]
        rows.append(
            [
                name[len(prefix):],
                int(h.get("count", 0)),
                h.get("sum", 0.0),
                h.get("mean", 0.0),
                h.get("p50", 0.0),
                h.get("p95", 0.0),
                h.get("min", 0.0),
                h.get("max", 0.0),
            ]
        )
    # Largest total first: the report answers "where does the time go".
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def build_report(target: Union[str, Path]) -> Dict[str, Any]:
    """The aggregated report as data: one merged metrics snapshot over
    every record the run flushed, plus the record count — the machine
    half of ``repro obs report`` (``--format json`` emits this)."""
    records = load_metrics_records(target)
    snap = aggregate(records).snapshot()
    return {
        "kind": "report",
        "target": str(target),
        "records": len(records),
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "hists": snap["hists"],
    }


def format_report(target: Union[str, Path]) -> str:
    """The full per-phase/per-kernel breakdown for a run directory."""
    records = load_metrics_records(target)
    if not records:
        return f"no metrics records found under {target}"
    snap = aggregate(records).snapshot()
    hists = snap["hists"]
    chunks: List[str] = [f"observability report: {target} ({len(records)} metrics record(s))"]
    claimed = set()
    for prefix, title in SECTIONS:
        rows = _hist_rows(hists, prefix)
        if not rows:
            continue
        claimed.update(n for n in hists if n.startswith(prefix))
        chunks.append(
            format_table(
                [
                    "name", "count", "total_s", "mean_s",
                    "p50_s", "p95_s", "min_s", "max_s",
                ],
                rows,
                title=title,
            )
        )
    other = {n: h for n, h in hists.items() if n not in claimed}
    if other:
        chunks.append(
            format_table(
                ["name", "count", "total", "mean", "p50", "p95", "min", "max"],
                _hist_rows(other, ""),
                title="Other distributions",
            )
        )
    if snap["counters"]:
        chunks.append(
            format_table(
                ["counter", "value"],
                [[name, snap["counters"][name]] for name in sorted(snap["counters"])],
                title="Counters",
            )
        )
    if snap["gauges"]:
        chunks.append(
            format_table(
                ["gauge", "value"],
                [[name, snap["gauges"][name]] for name in sorted(snap["gauges"])],
                title="Gauges",
            )
        )
    return "\n\n".join(chunks)


#: Stream name → path resolver, shared by tail and follow.
def _resolve_series_or_none(target: Union[str, Path]) -> Optional[Path]:
    """Adapter: :func:`repro.obs.series.resolve_series_path` raises when
    absent; the stream registry (tail/watch) wants None-and-keep-polling."""
    try:
        return _series.resolve_series_path(target)
    except FileNotFoundError:
        return None


STREAM_RESOLVERS: Dict[str, Callable[[Union[str, Path]], Optional[Path]]] = {
    "events": resolve_events_path,
    "metrics": resolve_metrics_path,
    "spans": _trace.resolve_spans_path,
    "series": _resolve_series_or_none,
}


def format_record(record: Dict[str, Any]) -> str:
    """One stream record (event, metrics line, or span) as one compact
    human line — shared by ``tail`` and ``tail --follow``."""
    ts = record.get("ts", "")
    if record.get("kind") == "metrics":
        ctx = record.get("ctx") or {}
        ctx_str = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
        return (
            f"{ts} metrics {ctx_str} "
            f"({len(record.get('counters') or {})} counters, "
            f"{len(record.get('hists') or {})} hists)"
        )
    if record.get("kind") == "series":
        nodes = record.get("nodes") or {}
        extras = []
        if "live" in nodes:
            extras.append(f"live={nodes['live']}")
        if nodes.get("pruned"):
            extras.append(f"pruned={nodes['pruned']}")
        if record.get("splits"):
            extras.append(f"splits={record['splits']}")
        for name, value in sorted((record.get("probes") or {}).items()):
            extras.append(f"{name}={value:.4g}")
        ctx = record.get("ctx") or {}
        cell = ctx.get("task_id") or ctx.get("cell") or ""
        return (
            f"series round={record.get('round', '?')} "
            f"wall={float(record.get('wall_s', 0.0)) * 1000:.1f}ms"
            + (f" cell={cell}" if cell else "")
            + ("" if not extras else " " + " ".join(extras))
        )
    if record.get("kind") == "span":
        attrs = record.get("attrs") or {}
        attrs_str = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        return (
            f"span {record.get('name', '?')} "
            f"{float(record.get('dur', 0.0)) * 1000:.1f}ms "
            f"pid={record.get('pid', '?')}"
            + (f" {attrs_str}" if attrs_str else "")
        )
    skip = {"kind", "ts", "level", "event"}
    fields = " ".join(
        f"{k}={record[k]}" for k in sorted(record) if k not in skip
    )
    return (
        f"{ts} {record.get('level', '?'):>7} "
        f"{record.get('event', '?')} {fields}"
    )


def format_tail(
    target: Union[str, Path], lines: int = 20, stream: str = "events"
) -> str:
    """The last ``lines`` records of a run's event/metrics/span stream,
    one compact line each."""
    resolver = STREAM_RESOLVERS.get(stream, resolve_events_path)
    path = resolver(target)
    if path is None:
        return f"no {stream} stream found under {target}"
    records = load_jsonl(path)[-max(1, lines):]
    if not records:
        return f"{path}: empty"
    out = [f"{path} (last {len(records)} of stream)"]
    out.extend(format_record(record) for record in records)
    return "\n".join(out)


def follow_stream(
    target: Union[str, Path],
    stream: str = "events",
    poll_s: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
    from_start: bool = False,
) -> Iterator[str]:
    """Poll-based tail -f over a run's stream: yields one formatted
    line per complete record as writers append them.

    Tolerates everything a live run does to the file: not existing yet
    (keeps polling), torn trailing lines (bytes after the last newline
    stay buffered until the writer finishes them), truncation (restarts
    from the top).  ``stop`` is checked once per poll — the CLI passes
    None and relies on Ctrl-C; tests pass a countdown.
    """
    resolver = STREAM_RESOLVERS.get(stream, resolve_events_path)
    offset: Optional[int] = None
    pending = b""
    while True:
        path = resolver(target)
        if path is not None:
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            if offset is None:
                offset = 0 if from_start else size
            if size < offset:
                offset, pending = 0, b""
            if size > offset:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
                    offset = handle.tell()
                pending += chunk
                *complete, pending = pending.split(b"\n")
                for raw in complete:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        record = json.loads(raw.decode("utf8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        continue
                    yield format_record(record)
        if stop is not None and stop():
            return
        time.sleep(poll_s)


# -- cross-run diffing -------------------------------------------------------

#: Default relative regression threshold: a histogram's mean or p95
#: must grow by more than this fraction to flag.  Generous on purpose —
#: two identical-config runs on a busy CI host jitter well past 10%.
DIFF_THRESHOLD = 0.5

#: Default absolute noise floor: histograms whose *baseline* total is
#: under this many seconds never flag (a 3x regression of 200µs of
#: work is measurement noise, not a finding).
DIFF_MIN_TOTAL_S = 0.02


def _diff_hists(target: Union[str, Path]) -> Dict[str, Dict[str, float]]:
    """A run's diffable timing histograms: every aggregated metrics
    histogram, plus one ``span.<name>`` histogram per span name (exact
    percentiles — computed from the full duration list, not a
    reservoir).  Either source may be absent; both absent is an error.
    """
    hists: Dict[str, Dict[str, float]] = {}
    found = False
    try:
        records = load_metrics_records(target)
    except FileNotFoundError:
        records = []
    if records:
        found = True
        hists.update(aggregate(records).snapshot()["hists"])
    span_durs = _trace.span_histograms(target)
    if span_durs:
        found = True
    for name, durs in span_durs.items():
        hists[name] = _exact_hist(durs)
    # Series-derived per-round wall time: exact (every round sampled,
    # not a reservoir).  Only diffed when BOTH runs carry series —
    # diff_runs drops and footnotes the one-sided case.
    try:
        walls = _series.round_wall_values(target)
    except FileNotFoundError:
        walls = []
    if walls:
        found = True
        hists["series.round_wall"] = _exact_hist(walls)
    if not found:
        raise FileNotFoundError(
            f"no obs data found under {target} "
            "(expected obs/metrics.jsonl and/or obs/spans.jsonl)"
        )
    return hists


def _exact_hist(values: List[float]) -> Dict[str, float]:
    """Summary stats with exact percentiles from a full sample list."""
    sample = sorted(values)
    return {
        "count": len(values),
        "sum": sum(values),
        "mean": sum(values) / len(values),
        "min": sample[0],
        "max": sample[-1],
        "p50": _percentile(sample, 0.50),
        "p95": _percentile(sample, 0.95),
    }


def _diff_counters(target: Union[str, Path]) -> Dict[str, float]:
    try:
        records = load_metrics_records(target)
    except FileNotFoundError:
        return {}
    return aggregate(records).snapshot()["counters"]


def diff_runs(
    a: Union[str, Path],
    b: Union[str, Path],
    threshold: float = DIFF_THRESHOLD,
    min_total_s: float = DIFF_MIN_TOTAL_S,
) -> Dict[str, Any]:
    """Compare run ``b`` (candidate) against run ``a`` (baseline).

    For every timing histogram present in both runs, the relative mean
    and p95 deltas are computed; a histogram *regresses* when either
    grows by more than ``threshold`` **and** its baseline total clears
    the ``min_total_s`` noise floor.  Percentile deltas only count when
    both sides actually have a percentile estimate (older baselines
    don't).  Counter differences are reported but never gated — counts
    like ``checkpoint.hit``/``miss`` legitimately differ between cold
    and warm runs.
    """
    hists_a = _diff_hists(a)
    hists_b = _diff_hists(b)
    notes: List[str] = []
    if ("series.round_wall" in hists_a) != ("series.round_wall" in hists_b):
        side = "baseline" if "series.round_wall" in hists_a else "candidate"
        notes.append(
            f"series.jsonl present only in the {side} run — series-derived "
            "per-round wall time not diffed (informational)"
        )
        hists_a.pop("series.round_wall", None)
        hists_b.pop("series.round_wall", None)
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(hists_a) & set(hists_b)):
        ha, hb = hists_a[name], hists_b[name]
        mean_a, mean_b = float(ha.get("mean", 0.0)), float(hb.get("mean", 0.0))
        p95_a, p95_b = float(ha.get("p95", 0.0)), float(hb.get("p95", 0.0))
        d_mean = (mean_b - mean_a) / mean_a if mean_a > 0 else 0.0
        d_p95 = (p95_b - p95_a) / p95_a if p95_a > 0 else 0.0
        above_floor = float(ha.get("sum", 0.0)) >= min_total_s
        regressed = above_floor and (d_mean > threshold or d_p95 > threshold)
        rows.append(
            {
                "name": name,
                "count_a": int(ha.get("count", 0)),
                "count_b": int(hb.get("count", 0)),
                "mean_a": mean_a,
                "mean_b": mean_b,
                "d_mean": d_mean,
                "p95_a": p95_a,
                "p95_b": p95_b,
                "d_p95": d_p95,
                "regressed": regressed,
                "improved": above_floor and d_mean < -threshold,
            }
        )
    counters_a, counters_b = _diff_counters(a), _diff_counters(b)
    counter_rows = [
        {
            "name": name,
            "a": counters_a.get(name, 0),
            "b": counters_b.get(name, 0),
        }
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    ]
    return {
        "a": str(a),
        "b": str(b),
        "threshold": threshold,
        "min_total_s": min_total_s,
        "rows": rows,
        "regressions": [r for r in rows if r["regressed"]],
        "improvements": [r for r in rows if r["improved"]],
        "counters": counter_rows,
        "notes": notes,
    }


def format_diff(diff: Dict[str, Any]) -> str:
    """Human rendering of a :func:`diff_runs` result."""
    out = [
        f"obs diff: {diff['a']} (baseline) vs {diff['b']} (candidate), "
        f"threshold +{diff['threshold'] * 100:.0f}%, "
        f"noise floor {diff['min_total_s']}s"
    ]
    rows = diff["rows"]
    if not rows:
        out.extend(f"note: {n}" for n in diff.get("notes") or [])
        out.append("no timing histograms shared by both runs")
        return "\n".join(out)
    table = [
        [
            ("REGRESSED " if r["regressed"] else "") + r["name"],
            r["count_a"],
            r["count_b"],
            r["mean_a"],
            r["mean_b"],
            f"{r['d_mean'] * 100:+.0f}%",
            r["p95_a"],
            r["p95_b"],
            f"{r['d_p95'] * 100:+.0f}%" if r["p95_a"] > 0 else "-",
        ]
        for r in sorted(rows, key=lambda r: r["d_mean"], reverse=True)
    ]
    out.append(
        format_table(
            [
                "name", "n_a", "n_b", "mean_a", "mean_b", "Δmean",
                "p95_a", "p95_b", "Δp95",
            ],
            table,
            title="Timing histograms",
        )
    )
    if diff["counters"]:
        out.append(
            format_table(
                ["counter", "a", "b"],
                [[c["name"], c["a"], c["b"]] for c in diff["counters"]],
                title="Counter differences (informational, never gated)",
            )
        )
    for note in diff.get("notes") or []:
        out.append(f"note: {note}")
    n_reg = len(diff["regressions"])
    out.append(
        f"{n_reg} regression(s), {len(diff['improvements'])} improvement(s) "
        f"across {len(rows)} shared histogram(s)"
    )
    return "\n".join(out)


def write_scaled_copy(
    src: Union[str, Path], dst: Union[str, Path], factor: float
) -> Path:
    """Write a copy of a run's obs data with every timing scaled by
    ``factor`` — the synthetic-regression fixture the CI diff leg (and
    the tests) check the ``--gate`` path against.  Returns the new run
    directory."""
    dst = Path(dst)
    obs_dst = dst / "obs"
    obs_dst.mkdir(parents=True, exist_ok=True)
    scaled_fields = ("sum", "min", "max", "mean", "p50", "p95", "p99")
    metrics_path = resolve_metrics_path(src)
    if metrics_path is not None and metrics_path.suffix != ".json":
        lines = []
        for record in load_jsonl(metrics_path):
            for hist in (record.get("hists") or {}).values():
                for key in scaled_fields:
                    if key in hist:
                        hist[key] = float(hist[key]) * factor
                if hist.get("res"):
                    hist["res"] = [float(v) * factor for v in hist["res"]]
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        (obs_dst / "metrics.jsonl").write_text(
            "\n".join(lines) + "\n" if lines else "", encoding="utf8"
        )
    spans_path = _trace.resolve_spans_path(src)
    if spans_path is not None:
        lines = []
        for record in load_jsonl(spans_path):
            if "dur" in record:
                record["dur"] = float(record["dur"]) * factor
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        (obs_dst / "spans.jsonl").write_text(
            "\n".join(lines) + "\n" if lines else "", encoding="utf8"
        )
    series_path = _resolve_series_or_none(src)
    if series_path is not None:
        lines = []
        for record in load_jsonl(series_path):
            if "wall_s" in record:
                record["wall_s"] = float(record["wall_s"]) * factor
            for section in ("layers", "kernels"):
                if isinstance(record.get(section), dict):
                    record[section] = {
                        k: float(v) * factor for k, v in record[section].items()
                    }
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        (obs_dst / "series.jsonl").write_text(
            "\n".join(lines) + "\n" if lines else "", encoding="utf8"
        )
    return dst


# -- Prometheus text exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    """Metric-name sanitisation: anything outside [a-zA-Z0-9_] → _."""
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return f"_{out}" if out and out[0].isdigit() else out


#: Histogram percentile field → Prometheus quantile label value.
_PROM_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def format_prometheus(target: Union[str, Path]) -> str:
    """The run's aggregated metrics in Prometheus text exposition
    format (0.0.4): counters as ``repro_<name>_total``, gauges as
    ``repro_<name>``, histograms as summaries (quantile series plus
    ``_count``/``_sum``).  ``repro obs export --format prometheus``
    writes this — drop it in a node_exporter textfile-collector
    directory and it scrapes as-is."""
    records = load_metrics_records(target)
    snap = aggregate(records).snapshot()
    lines: List[str] = []
    for name in sorted(snap["counters"]):
        metric = f"repro_{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(snap['counters'][name]):g}")
    for name in sorted(snap["gauges"]):
        metric = f"repro_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(snap['gauges'][name]):g}")
    for name in sorted(snap["hists"]):
        hist = snap["hists"][name]
        metric = f"repro_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for field, quantile in _PROM_QUANTILES:
            if field in hist:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {float(hist[field]):g}'
                )
        lines.append(f"{metric}_count {int(hist.get('count', 0))}")
        lines.append(f"{metric}_sum {float(hist.get('sum', 0.0)):g}")
    return "\n".join(lines) + "\n" if lines else ""
