"""Reading and rendering observability artifacts.

``repro obs report <run-dir>`` aggregates every metrics line a run
flushed (sequential runs flush once, parallel/distributed runs flush
one line per cell per worker) into one registry, then renders the
per-phase / per-kernel / counter breakdown as aligned text tables.
``repro obs tail`` pretty-prints the last N lines of an ``events.jsonl``
or ``metrics.jsonl`` stream.

Both readers use the result store's torn-line discipline: a trailing
line that does not parse is skipped (a writer may be mid-append), never
an error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..viz.tables import format_table
from .metrics import MetricsRegistry

#: Histogram-name prefixes rendered as their own report sections, in
#: display order.  Everything instrumented in-tree uses one of these.
SECTIONS = (
    ("round.", "Per-round phases"),
    ("kernel.", "Kernels"),
    ("queue.", "Queue operations"),
    ("cell.", "Cells"),
    ("bench.", "Benchmarks"),
)


def resolve_metrics_path(target: Union[str, Path]) -> Optional[Path]:
    """Locate the metrics stream for a target: a metrics/profile file
    itself, a run dir containing ``obs/metrics.jsonl``, or an obs dir
    containing ``metrics.jsonl``."""
    target = Path(target)
    if target.is_file():
        return target
    for candidate in (
        target / "obs" / "metrics.jsonl",
        target / "metrics.jsonl",
    ):
        if candidate.is_file():
            return candidate
    return None


def resolve_events_path(target: Union[str, Path]) -> Optional[Path]:
    """Locate the events stream for a target (same convention)."""
    target = Path(target)
    if target.is_file():
        return target
    for candidate in (
        target / "obs" / "events.jsonl",
        target / "events.jsonl",
    ):
        if candidate.is_file():
            return candidate
    return None


def load_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL stream, skipping unparseable lines (torn appends)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def load_metrics_records(target: Union[str, Path]) -> List[Dict[str, Any]]:
    """All metrics records reachable from ``target``: metrics.jsonl
    lines, a profile.json's embedded snapshot, or cell-record
    ``metrics`` sections when pointed at a results file."""
    path = resolve_metrics_path(target)
    if path is None:
        raise FileNotFoundError(
            f"no metrics stream found under {target} "
            "(expected obs/metrics.jsonl, metrics.jsonl, or a file path)"
        )
    if path.suffix == ".json":
        report = json.loads(path.read_text())
        snap = report.get("metrics", report)
        return [snap]
    records = load_jsonl(path)
    out = []
    for record in records:
        if record.get("kind") == "metrics" or "hists" in record or "counters" in record:
            out.append(record)
        elif "metrics" in record and isinstance(record["metrics"], dict):
            # A result-store cell record carrying a metrics section.
            out.append(record["metrics"])
    return out


def aggregate(records: Iterable[Dict[str, Any]]) -> MetricsRegistry:
    """Fold many metrics records into one registry (counters add,
    gauges keep the max, histograms merge)."""
    registry = MetricsRegistry()
    for record in records:
        registry.merge_snapshot(record)
    return registry


def _hist_rows(hists: Dict[str, Dict[str, float]], prefix: str) -> List[List]:
    rows = []
    for name in sorted(hists):
        if not name.startswith(prefix):
            continue
        h = hists[name]
        rows.append(
            [
                name[len(prefix):],
                int(h.get("count", 0)),
                h.get("sum", 0.0),
                h.get("mean", 0.0),
                h.get("min", 0.0),
                h.get("max", 0.0),
            ]
        )
    # Largest total first: the report answers "where does the time go".
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def format_report(target: Union[str, Path]) -> str:
    """The full per-phase/per-kernel breakdown for a run directory."""
    records = load_metrics_records(target)
    if not records:
        return f"no metrics records found under {target}"
    snap = aggregate(records).snapshot()
    hists = snap["hists"]
    chunks: List[str] = [f"observability report: {target} ({len(records)} metrics record(s))"]
    claimed = set()
    for prefix, title in SECTIONS:
        rows = _hist_rows(hists, prefix)
        if not rows:
            continue
        claimed.update(n for n in hists if n.startswith(prefix))
        chunks.append(
            format_table(
                ["name", "count", "total_s", "mean_s", "min_s", "max_s"],
                rows,
                title=title,
            )
        )
    other = {n: h for n, h in hists.items() if n not in claimed}
    if other:
        chunks.append(
            format_table(
                ["name", "count", "total", "mean", "min", "max"],
                _hist_rows(other, ""),
                title="Other distributions",
            )
        )
    if snap["counters"]:
        chunks.append(
            format_table(
                ["counter", "value"],
                [[name, snap["counters"][name]] for name in sorted(snap["counters"])],
                title="Counters",
            )
        )
    if snap["gauges"]:
        chunks.append(
            format_table(
                ["gauge", "value"],
                [[name, snap["gauges"][name]] for name in sorted(snap["gauges"])],
                title="Gauges",
            )
        )
    return "\n\n".join(chunks)


def format_tail(
    target: Union[str, Path], lines: int = 20, stream: str = "events"
) -> str:
    """The last ``lines`` records of a run's event (or metrics) stream,
    one compact line each."""
    resolver = resolve_events_path if stream == "events" else resolve_metrics_path
    path = resolver(target)
    if path is None:
        return f"no {stream} stream found under {target}"
    records = load_jsonl(path)[-max(1, lines):]
    if not records:
        return f"{path}: empty"
    out = [f"{path} (last {len(records)} of stream)"]
    for record in records:
        ts = record.get("ts", "")
        if record.get("kind") == "metrics":
            ctx = record.get("ctx") or {}
            ctx_str = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
            out.append(
                f"{ts} metrics {ctx_str} "
                f"({len(record.get('counters') or {})} counters, "
                f"{len(record.get('hists') or {})} hists)"
            )
        else:
            skip = {"kind", "ts", "level", "event"}
            fields = " ".join(
                f"{k}={record[k]}" for k in sorted(record) if k not in skip
            )
            out.append(
                f"{ts} {record.get('level', '?'):>7} "
                f"{record.get('event', '?')} {fields}"
            )
    return "\n".join(out)
