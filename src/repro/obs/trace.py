"""Causal span tracing across processes.

A *span* is one timed unit of work with a causal parent: a sweep, a
prefix plan, a checkpoint publish, a cell, a round, a layer step, a
kernel call.  Spans form a tree via ``(trace_id, span_id, parent_id)``,
and because the parent context propagates across every process boundary
the runtime owns — pool children in
:class:`~repro.runtime.runner.ParallelRunner` (fork *and* spawn, via
``REPRO_TRACE_CTX``), forked cells in fork-mode sweeps, and cluster
workers (via the queue manifest's ``trace`` token) — a distributed
sweep reconstructs into **one** tree:

    sweep → prefix plan → checkpoint publish/fetch → cell → round →
    layer → kernel

Emission mirrors :mod:`repro.obs.metrics`: everything is off by
default, and the instrumented seams cost one module-global check
(``perf_smoke.py --obs-gate`` covers this fast path).  When an obs dir
is configured, finished spans are buffered per process and appended to
``obs/spans.jsonl`` in batched single ``write()`` calls on an
``O_APPEND`` descriptor, so concurrent workers interleave whole lines
and readers use the result store's torn-trailing-line discipline.

Span record schema (one line)::

    {"kind": "span", "trace": tid, "span": sid, "parent": psid|null,
     "name": "cell", "start": <epoch s>, "dur": <s>, "pid": <os pid>,
     "attrs": {"task_id": ..., "worker": ..., ...}}

Wall-clock ``start`` (``time.time``) aligns spans across processes on
one host; durations are monotonic (``perf_counter``) so a span is never
negative.  The analysis half of this module — :func:`build_tree`,
:func:`format_tree`, :func:`critical_path`, :func:`chrome_trace` —
reads the records back; ``repro obs trace tree / critical-path`` and
``repro obs export --format chrome`` are its CLI surfaces (the Chrome
trace-event JSON loads in Perfetto or ``about:tracing``).
"""

from __future__ import annotations

import atexit
import contextvars
import json
import os
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

#: The one global switch every traced seam checks before any work —
#: the same one-branch disabled fast path as ``repro.obs.metrics``.
ENABLED = False

#: Environment variable carrying the parent span context
#: (``"<trace_id>:<span_id>"``) into child processes under spawn.
ENV_CTX = "REPRO_TRACE_CTX"

_perf_counter = time.perf_counter
_time = time.time

#: Path of the spans.jsonl sink, or None (spans recorded nowhere).
_SPANS_PATH: Optional[Path] = None

#: Current span context: ``(trace_id, span_id)`` of the innermost open
#: span, inherited by children (same thread/task) and by forked
#: processes.
_CTX: contextvars.ContextVar[Optional[Tuple[str, str]]] = contextvars.ContextVar(
    "repro_obs_trace_ctx", default=None
)

# -- the per-process buffer --------------------------------------------------
# Finished spans accumulate here and are flushed in one O_APPEND write
# per batch.  The owning pid is tracked so a pool child forked mid-run
# drops the parent's unflushed spans instead of duplicating them.

_BUFFER: List[str] = []
_BUFFER_CAP = 128
_BUFFER_PID = os.getpid()
_BUFFER_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def set_enabled(on: bool) -> None:
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


def set_spans_path(path: Union[str, Path, None]) -> None:
    global _SPANS_PATH, _ATEXIT_REGISTERED
    _SPANS_PATH = Path(path) if path is not None else None
    if _SPANS_PATH is not None and not _ATEXIT_REGISTERED:
        atexit.register(flush)
        _ATEXIT_REGISTERED = True


def spans_path() -> Optional[Path]:
    return _SPANS_PATH


def new_id() -> str:
    """A fresh 64-bit hex id.  ``os.urandom`` — never the simulation's
    RNG streams, so tracing stays trajectory-neutral."""
    return os.urandom(8).hex()


# -- context -----------------------------------------------------------------


def current() -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` of the innermost open span, or None."""
    return _CTX.get()


def context_token() -> Optional[str]:
    """The current context as a propagatable ``"trace:span"`` token
    (what goes into ``REPRO_TRACE_CTX`` and the queue manifest)."""
    ctx = _CTX.get()
    return f"{ctx[0]}:{ctx[1]}" if ctx is not None else None


class _CtxBinding:
    """Token-restoring handle returned by :func:`adopt_token` — usable
    as a context manager, or fire-and-forget for process-lifetime
    adoption (a spawned worker parenting everything to the sweep)."""

    __slots__ = ("_token",)

    def __init__(self, token) -> None:
        self._token = token

    def __enter__(self) -> "_CtxBinding":
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _CTX.reset(self._token)
        return False


def adopt_token(token: Optional[str]) -> _CtxBinding:
    """Adopt a propagated ``"trace:span"`` token as this context's
    parent span.  Malformed or empty tokens are ignored (a no-op
    binding) — a worker must never crash over trace plumbing."""
    if not token or ":" not in token:
        return _CtxBinding(None)
    trace_id, span_id = token.split(":", 1)
    if not trace_id or not span_id:
        return _CtxBinding(None)
    return _CtxBinding(_CTX.set((trace_id, span_id)))


def adopt_env(environ: Optional[Dict[str, str]] = None) -> _CtxBinding:
    """Adopt the parent context exported via :data:`ENV_CTX`, if any —
    how spawn-mode pool children and locally-spawned cluster workers
    re-join the sweep's trace."""
    env = os.environ if environ is None else environ
    return adopt_token(env.get(ENV_CTX))


# -- emission ----------------------------------------------------------------


def _append_record(record: Dict[str, Any]) -> None:
    global _BUFFER_PID
    line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=repr)
    with _BUFFER_LOCK:
        if os.getpid() != _BUFFER_PID:
            # Forked child: the parent's unflushed spans are not ours
            # to write (the parent will flush them itself).
            _BUFFER.clear()
            _BUFFER_PID = os.getpid()
        _BUFFER.append(line)
        full = len(_BUFFER) >= _BUFFER_CAP
    if full:
        flush()


def flush() -> int:
    """Write every buffered span to ``spans.jsonl`` as one ``O_APPEND``
    write; returns the number of spans written.  Safe to call anytime
    (and called per cell, at worker exit, and atexit)."""
    global _BUFFER_PID
    with _BUFFER_LOCK:
        if os.getpid() != _BUFFER_PID:
            _BUFFER.clear()
            _BUFFER_PID = os.getpid()
            return 0
        if not _BUFFER or _SPANS_PATH is None:
            return 0
        lines, count = "\n".join(_BUFFER) + "\n", len(_BUFFER)
        _BUFFER.clear()
    try:
        _SPANS_PATH.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(_SPANS_PATH, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, lines.encode("utf8"))
        finally:
            os.close(fd)
    except OSError:  # pragma: no cover - sink failure must not kill runs
        return 0
    return count


def record(
    name: str,
    start: float,
    dur: float,
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    """Record one already-timed *leaf* span under the current context —
    the cheap path ``@timed`` kernels use (no contextvar churn)."""
    ctx = _CTX.get()
    if ctx is None:
        trace_id, parent = new_id(), None
    else:
        trace_id, parent = ctx
    rec: Dict[str, Any] = {
        "kind": "span",
        "trace": trace_id,
        "span": new_id(),
        "parent": parent,
        "name": name,
        "start": round(start, 6),
        "dur": round(dur, 9),
        "pid": os.getpid(),
    }
    if attrs:
        rec["attrs"] = attrs
    _append_record(rec)


class Span:
    """One open span: a context manager that times its block, makes
    itself the current parent for anything opened inside it (same
    thread, forked children), and records itself on exit."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "_t0",
        "_start",
        "_token",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        ctx = _CTX.get()
        if ctx is None:
            self.trace_id, self.parent_id = new_id(), None
        else:
            self.trace_id, self.parent_id = ctx
        self.span_id = new_id()
        self._t0 = 0.0
        self._start = 0.0
        self._token = None

    def __enter__(self) -> "Span":
        self._token = _CTX.set((self.trace_id, self.span_id))
        self._start = _time()
        self._t0 = _perf_counter()
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        dur = _perf_counter() - self._t0
        _CTX.reset(self._token)
        if exc_type is not None:
            self.attrs = dict(self.attrs)
            self.attrs["error"] = exc_type.__name__
        rec: Dict[str, Any] = {
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self._start, 6),
            "dur": round(dur, 9),
            "pid": os.getpid(),
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        _append_record(rec)
        return False


class _NullSpan:
    """The disabled-path span: does nothing, allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """A context manager tracing its block as one span — ``NULL_SPAN``
    (free) when tracing is off."""
    if not ENABLED:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: str) -> Callable:
    """Decorator tracing every call of a function as a span ``name``.
    Disabled path: one global check per call; the original stays on
    ``__wrapped__`` (same contract as ``obs.metrics.timed``)."""
    from functools import wraps

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            with Span(name, {}):
                return fn(*args, **kwargs)

        wrapper.__obs_traced__ = name
        return wrapper

    return decorate


# -- reading -----------------------------------------------------------------


def resolve_spans_path(target: Union[str, Path]) -> Optional[Path]:
    """Locate the span stream for a target: a spans file itself, a run
    dir containing ``obs/spans.jsonl``, or an obs dir."""
    target = Path(target)
    if target.is_file():
        return target
    for candidate in (target / "obs" / "spans.jsonl", target / "spans.jsonl"):
        if candidate.is_file():
            return candidate
    return None


def load_spans(target: Union[str, Path]) -> List[Dict[str, Any]]:
    """All span records reachable from ``target`` (torn trailing lines
    skipped, like every JSONL reader in this tree).  Raises
    ``FileNotFoundError`` when no span stream exists."""
    path = resolve_spans_path(target)
    if path is None:
        raise FileNotFoundError(
            f"no span stream found under {target} "
            "(expected obs/spans.jsonl, spans.jsonl, or a file path)"
        )
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if rec.get("kind") == "span" and "span" in rec and "name" in rec:
                spans.append(rec)
    return spans


class SpanNode:
    """One reconstructed span with its children (sorted by start)."""

    __slots__ = ("rec", "children", "orphan")

    def __init__(self, rec: Dict[str, Any], orphan: bool = False) -> None:
        self.rec = rec
        self.children: List["SpanNode"] = []
        self.orphan = orphan

    @property
    def name(self) -> str:
        return self.rec.get("name", "?")

    @property
    def start(self) -> float:
        return float(self.rec.get("start", 0.0))

    @property
    def dur(self) -> float:
        return float(self.rec.get("dur", 0.0))

    @property
    def end(self) -> float:
        return self.start + self.dur

    @property
    def attrs(self) -> Dict[str, Any]:
        return self.rec.get("attrs") or {}


def build_tree(
    spans: Iterable[Dict[str, Any]],
) -> Tuple[List[SpanNode], List[SpanNode]]:
    """Reconstruct the span forest: ``(roots, orphans)``.

    Roots are spans with no parent; *orphans* are spans whose recorded
    parent id is missing from the stream (a crashed writer, a torn
    line, a broken propagation seam) — they are returned separately
    *and* rendered as annotated extra roots, never silently dropped.
    A fully-stitched single-sweep stream has one root and no orphans.
    """
    nodes: Dict[str, SpanNode] = {}
    for rec in spans:
        nodes[rec["span"]] = SpanNode(rec)
    roots: List[SpanNode] = []
    orphans: List[SpanNode] = []
    for node in nodes.values():
        parent_id = node.rec.get("parent")
        if parent_id is None:
            roots.append(node)
        elif parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            node.orphan = True
            orphans.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.name))
    roots.sort(key=lambda n: (n.start, n.name))
    orphans.sort(key=lambda n: (n.start, n.name))
    return roots, orphans


#: Sibling spans of one name beyond this many are collapsed into an
#: aggregate line by :func:`format_tree` (a 30-round cell would
#: otherwise print 30 identical "round" lines).
_COLLAPSE_AFTER = 4


def _format_node(
    node: SpanNode, depth: int, max_depth: int, out: List[str]
) -> None:
    pad = "  " * depth
    label = node.name
    attrs = node.attrs
    detail = " ".join(
        f"{key}={attrs[key]}"
        for key in ("task_id", "worker", "round", "mode", "n_tasks")
        if key in attrs
    )
    mark = "  [orphaned: parent span missing]" if node.orphan else ""
    out.append(
        f"{pad}{label}  {node.dur * 1000:.1f}ms"
        + (f"  {detail}" if detail else "")
        + mark
    )
    if depth + 1 > max_depth or not node.children:
        return
    by_name: Dict[str, List[SpanNode]] = {}
    for child in node.children:
        by_name.setdefault(child.name, []).append(child)
    for child in node.children:
        group = by_name.get(child.name)
        if group is None:
            continue  # already rendered/collapsed
        if len(group) <= _COLLAPSE_AFTER:
            by_name.pop(child.name)
            for sibling in group:
                _format_node(sibling, depth + 1, max_depth, out)
        else:
            by_name.pop(child.name)
            _format_node(group[0], depth + 1, max_depth, out)
            rest = group[1:]
            total = sum(s.dur for s in rest)
            out.append(
                f"{'  ' * (depth + 1)}… ×{len(rest)} more "
                f"{child.name}  {total * 1000:.1f}ms total"
            )


def format_tree(target: Union[str, Path], max_depth: int = 4) -> str:
    """The reconstructed span tree of a run, as indented text."""
    spans = load_spans(target)
    if not spans:
        return f"no spans recorded under {target}"
    roots, orphans = build_tree(spans)
    out = [
        f"trace tree: {target} ({len(spans)} span(s), "
        f"{len(roots)} root(s), {len(orphans)} orphan(s))"
    ]
    for root in roots + orphans:
        _format_node(root, 0, max_depth, out)
    return "\n".join(out)


# -- critical path -----------------------------------------------------------


def critical_path(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """The longest blocking chain plus per-worker busy/idle attribution.

    The chain walks from the longest root: at every level the child
    that *finishes last* is what the parent was waiting on; the
    remainder of the parent's time is its self time.  Worker lanes
    (cell spans grouped by their ``worker`` attr, or pid) get a
    busy/idle split over the sweep window, with the largest gap and
    what ran right after it — "worker 2 idle 41%, longest gap 1.2s
    before cell replication=8/seed=1" is the output this feeds.
    """
    roots, orphans = build_tree(spans)
    all_roots = roots + orphans
    if not all_roots:
        return {"chain": [], "workers": [], "wall_s": 0.0}
    top = max(all_roots, key=lambda n: n.dur)
    chain: List[Dict[str, Any]] = []
    node = top
    while node is not None:
        blocking = max(node.children, key=lambda n: n.end, default=None)
        child_dur = blocking.dur if blocking is not None else 0.0
        chain.append(
            {
                "name": node.name,
                "dur_s": node.dur,
                "self_s": max(0.0, node.dur - child_dur),
                "attrs": node.attrs,
            }
        )
        node = blocking

    # Worker lanes: every "cell" span, grouped by worker attr or pid.
    window_start, window_end = top.start, top.end
    lanes: Dict[str, List[SpanNode]] = {}

    def collect_cells(node: SpanNode) -> None:
        if node.name == "cell":
            lane = str(node.attrs.get("worker") or f"pid-{node.rec.get('pid')}")
            lanes.setdefault(lane, []).append(node)
            return  # cells don't nest
        for child in node.children:
            collect_cells(child)

    for root in all_roots:
        collect_cells(root)
    workers: List[Dict[str, Any]] = []
    wall = max(1e-9, window_end - window_start)
    for lane in sorted(lanes):
        cells = sorted(lanes[lane], key=lambda n: n.start)
        busy = sum(c.dur for c in cells)
        gap_s, gap_before = 0.0, None
        prev_end = window_start
        for cell in cells:
            gap = cell.start - prev_end
            if gap > gap_s:
                gap_s = gap
                gap_before = cell.attrs.get("task_id", cell.name)
            prev_end = max(prev_end, cell.end)
        tail = window_end - prev_end
        if tail > gap_s:
            gap_s, gap_before = tail, "(end of sweep)"
        workers.append(
            {
                "worker": lane,
                "cells": len(cells),
                "busy_s": busy,
                "idle_s": max(0.0, wall - busy),
                "idle_frac": max(0.0, 1.0 - busy / wall),
                "longest_gap_s": gap_s,
                "gap_before": gap_before,
            }
        )
    return {"chain": chain, "workers": workers, "wall_s": top.dur}


def format_critical_path(target: Union[str, Path]) -> str:
    """Human rendering of :func:`critical_path` for a run."""
    spans = load_spans(target)
    if not spans:
        return f"no spans recorded under {target}"
    analysis = critical_path(spans)
    out = [f"critical path: {target} (wall {analysis['wall_s']:.3f}s)"]
    for i, step in enumerate(analysis["chain"]):
        attrs = step["attrs"]
        detail = " ".join(
            f"{key}={attrs[key]}"
            for key in ("task_id", "worker", "round")
            if key in attrs
        )
        out.append(
            f"{'  ' * i}{step['name']}  {step['dur_s'] * 1000:.1f}ms "
            f"(self {step['self_s'] * 1000:.1f}ms)"
            + (f"  {detail}" if detail else "")
        )
    if analysis["workers"]:
        out.append("")
        out.append("worker utilisation over the sweep window:")
        for lane in analysis["workers"]:
            line = (
                f"  {lane['worker']}: {lane['cells']} cell(s), "
                f"busy {lane['busy_s']:.3f}s, "
                f"idle {lane['idle_frac'] * 100:.0f}%"
            )
            if lane["gap_before"] is not None and lane["longest_gap_s"] > 0:
                line += (
                    f", longest gap {lane['longest_gap_s'] * 1000:.0f}ms "
                    f"before {lane['gap_before']}"
                )
            out.append(line)
    return "\n".join(out)


# -- Chrome trace-event export -----------------------------------------------


def chrome_trace(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Spans as Chrome trace-event JSON (Perfetto / ``about:tracing``).

    Complete (``"ph": "X"``) events on one lane per OS process, labelled
    by the worker identity when a cell span on that pid carries one —
    thread-per-worker lanes.  Timestamps are microseconds relative to
    the earliest span, so the viewer opens at t=0.
    """
    spans = list(spans)
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(float(rec.get("start", 0.0)) for rec in spans)
    lane_names: Dict[int, str] = {}
    events: List[Dict[str, Any]] = []
    for rec in spans:
        pid = int(rec.get("pid", 0))
        attrs = rec.get("attrs") or {}
        if pid not in lane_names and attrs.get("worker"):
            lane_names[pid] = f"worker {attrs['worker']}"
        args = dict(attrs)
        args["trace"] = rec.get("trace")
        args["span"] = rec.get("span")
        if rec.get("parent"):
            args["parent"] = rec["parent"]
        events.append(
            {
                "name": rec.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": round((float(rec.get("start", 0.0)) - t0) * 1e6, 3),
                "dur": round(float(rec.get("dur", 0.0)) * 1e6, 3),
                "pid": pid,
                "tid": pid,
                "args": args,
            }
        )
    for pid in sorted({e["pid"] for e in events}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": lane_names.get(pid, f"pid {pid}")},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    target: Union[str, Path], out: Union[str, Path]
) -> Path:
    """Export a run's spans as a Chrome trace file; returns the path."""
    trace = chrome_trace(load_spans(target))
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace, sort_keys=True) + "\n", encoding="utf8")
    return out


# -- aggregation for diffing -------------------------------------------------


def span_histograms(target: Union[str, Path]) -> Dict[str, List[float]]:
    """Per-name span durations of a run (``{"span.round": [...]}``) —
    what ``repro obs diff`` folds next to the metrics histograms.
    Returns ``{}`` when the run recorded no spans."""
    try:
        spans = load_spans(target)
    except FileNotFoundError:
        return {}
    out: Dict[str, List[float]] = {}
    for rec in spans:
        out.setdefault(f"span.{rec.get('name', '?')}", []).append(
            float(rec.get("dur", 0.0))
        )
    return out
