"""Per-round time-series telemetry: one compact record per round.

Aggregate metrics (PR 6) hide *when* inside a run the cost happened —
Polystyrene's repair waves after a catastrophic failure are bursty by
design, so a per-cell histogram averages away exactly the rounds that
matter.  ``repro.obs.series`` fixes that: both engines flush one JSONL
record per simulation round to ``obs/series.jsonl``::

    {"kind": "series", "ctx": {run/worker/cell context}, "round": n,
     "wall_s": ..., "layers": {layer: seconds},
     "kernels": {kernel: seconds}, "messages": {layer: units},
     "nodes": {"live": ..., "dead": ..., "pruned": ...},
     "exchanges": {"tman": ..., "migration": ...}, "splits": ...,
     "mem": {family: {"cur": bytes, "peak": bytes}},   # ledger on
     "probes": {"homogeneity": ..., "proximity": ...,
                "holder_multiplicity": ...}}           # every N rounds

Per-kernel seconds, exchange counts and SPLIT counts are *deltas* of
the metrics registry's cumulative histograms/counters against the
previous round — no second instrumentation seam in the kernels.  The
domain health probes (homogeneity, proximity, holder multiplicity) are
computed by an observer at a configurable cadence
(``REPRO_OBS_SERIES_EVERY``, default every 10 rounds) and staged here
via :func:`note_probes`; ``emit_round`` folds them into that round's
record.

Emission rides the engine's existing per-round seam behind the same
one-branch ``ENABLED`` fast path as metrics and spans, with records
buffered per process and flushed as batched ``O_APPEND`` writes
(concurrent workers interleave whole lines).  Everything is read-only
and draws no simulation RNG: trajectories and golden digests are
bit-identical with series on or off.

Reading back: :func:`load_series` (torn trailing lines skipped),
:func:`format_series` (the ``repro obs series`` table + unicode
sparklines), and ``repro obs watch`` follows the live stream through
:func:`repro.obs.report.follow_stream`.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from . import log
from . import mem as _mem
from . import metrics as _metrics

#: The one global switch the engine's per-round seam checks.
ENABLED = False

#: Probe cadence environment knob (rounds between health probes).
ENV_SERIES_EVERY = "REPRO_OBS_SERIES_EVERY"

_SERIES_PATH: Optional[Path] = None

# -- the per-process buffer (same discipline as trace.py) --------------------

_BUFFER: List[str] = []
_BUFFER_CAP = 128
_BUFFER_PID = os.getpid()
_BUFFER_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False

#: Cumulative registry totals at the previous emit, for per-round deltas.
_LAST_HIST: Dict[str, Tuple[int, float]] = {}
_LAST_COUNTERS: Dict[str, float] = {}

#: Probe values staged by the health-probe observer for the next emit.
_PENDING_PROBES: Optional[Dict[str, float]] = None

_PROBE_EVERY = 10

#: Split-kernel histogram names whose per-round call-count delta is the
#: series SPLIT count (the histogram count doubles as the call counter).
_SPLIT_HISTS = (
    "kernel.batch_split",
    "kernel.split.basic",
    "kernel.split.advanced",
    "kernel.split.pd",
    "kernel.split.md",
)


def set_enabled(on: bool) -> None:
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


def set_series_path(path: Union[str, Path, None]) -> None:
    global _SERIES_PATH, _ATEXIT_REGISTERED
    _SERIES_PATH = Path(path) if path is not None else None
    if _SERIES_PATH is not None and not _ATEXIT_REGISTERED:
        atexit.register(flush)
        _ATEXIT_REGISTERED = True


def series_path() -> Optional[Path]:
    return _SERIES_PATH


def set_probe_every(every: int) -> None:
    """Set the health-probe cadence (rounds between probes)."""
    global _PROBE_EVERY
    every = int(every)
    if every < 1:
        raise ValueError(
            f"series probe cadence must be >= 1 round, got {every} "
            f"(check {ENV_SERIES_EVERY})"
        )
    _PROBE_EVERY = every


def probe_every() -> int:
    return _PROBE_EVERY


def _probe_every_from_env(environ: Optional[Dict[str, str]] = None) -> int:
    """``REPRO_OBS_SERIES_EVERY`` → cadence (default 10), validated."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_SERIES_EVERY)
    if not raw:
        return 10
    try:
        every = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_SERIES_EVERY} must be an integer >= 1, got {raw!r}"
        ) from None
    if every < 1:
        raise ValueError(
            f"{ENV_SERIES_EVERY} must be an integer >= 1, got {raw!r}"
        )
    return every


def reset_cell() -> None:
    """Start a fresh per-cell series scope: clear the delta baselines
    and any staged probes (the registry itself was just reset)."""
    global _PENDING_PROBES
    _LAST_HIST.clear()
    _LAST_COUNTERS.clear()
    _PENDING_PROBES = None


def note_probes(values: Dict[str, float]) -> None:
    """Stage domain health-probe values for the next round record —
    called by the probe observer, folded in by :func:`emit_round`."""
    global _PENDING_PROBES
    _PENDING_PROBES = dict(values)


# -- emission ----------------------------------------------------------------


def _append_record(record: Dict[str, Any]) -> None:
    global _BUFFER_PID
    line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=repr)
    with _BUFFER_LOCK:
        if os.getpid() != _BUFFER_PID:
            # Forked child: the parent's unflushed records are not ours.
            _BUFFER.clear()
            _BUFFER_PID = os.getpid()
        _BUFFER.append(line)
        full = len(_BUFFER) >= _BUFFER_CAP
    if full:
        flush()


def flush() -> int:
    """Write every buffered record to ``series.jsonl`` as one
    ``O_APPEND`` write; safe anytime (per cell, worker exit, atexit)."""
    global _BUFFER_PID
    with _BUFFER_LOCK:
        if os.getpid() != _BUFFER_PID:
            _BUFFER.clear()
            _BUFFER_PID = os.getpid()
            return 0
        if not _BUFFER or _SERIES_PATH is None:
            return 0
        lines, count = "\n".join(_BUFFER) + "\n", len(_BUFFER)
        _BUFFER.clear()
    try:
        _SERIES_PATH.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(_SERIES_PATH, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, lines.encode("utf8"))
        finally:
            os.close(fd)
    except OSError:  # pragma: no cover - sink failure must not kill runs
        return 0
    return count


def emit_round(
    sim,
    completed: int,
    wall_s: float,
    layer_walls: Dict[str, float],
    layer_costs: Dict[str, int],
    pruned: int,
) -> None:
    """Build and buffer one series record for the just-completed round.

    Called from ``Simulation.step`` (both engines go through it) after
    the observers ran, so staged probe values belong to this round."""
    global _PENDING_PROBES
    reg = _metrics.registry()
    record: Dict[str, Any] = {
        "kind": "series",
        "ctx": dict(log.context()),
        "round": completed,
        "wall_s": round(wall_s, 9),
        "layers": {k: round(v, 9) for k, v in layer_walls.items()},
    }
    if layer_costs:
        record["messages"] = dict(layer_costs)
    network = getattr(sim, "network", None)
    if network is not None:
        record["nodes"] = {
            "live": network.n_alive,
            "dead": network.n_total - network.n_alive,
            "pruned": pruned,
        }
    # Per-round kernel seconds + SPLIT counts: deltas of the cumulative
    # kernel histograms (one locked prefix scan per round).
    totals = reg.hist_totals("kernel.")
    kernels: Dict[str, float] = {}
    splits = 0
    for name, (cnt, total_s) in totals.items():
        last_cnt, last_s = _LAST_HIST.get(name, (0, 0.0))
        _LAST_HIST[name] = (cnt, total_s)
        d_s = total_s - last_s
        if d_s > 0:
            kernels[name[len("kernel."):]] = round(d_s, 9)
        if name in _SPLIT_HISTS:
            splits += cnt - last_cnt
    if kernels:
        record["kernels"] = kernels
    record["splits"] = splits
    # Per-round exchange counts: counter deltas under the same prefix.
    exchanges: Dict[str, float] = {}
    for name, value in reg.counters_prefixed("exchanges.").items():
        last = _LAST_COUNTERS.get(name, 0.0)
        _LAST_COUNTERS[name] = value
        d = value - last
        if d:
            exchanges[name[len("exchanges."):]] = d
    if exchanges:
        record["exchanges"] = exchanges
    if _mem.ENABLED:
        fields = _mem.series_fields()
        if fields:
            record["mem"] = fields
    if _PENDING_PROBES is not None:
        record["probes"] = _PENDING_PROBES
        _PENDING_PROBES = None
    _append_record(record)


# -- reading back ------------------------------------------------------------


def resolve_series_path(target: Union[str, Path]) -> Path:
    """``target`` may be a series.jsonl file, a run dir containing
    ``obs/series.jsonl``, or a dir containing ``series.jsonl``."""
    p = Path(target)
    if p.is_file():
        return p
    for cand in (p / "obs" / "series.jsonl", p / "series.jsonl"):
        if cand.is_file():
            return cand
    raise FileNotFoundError(f"no series.jsonl under {target}")


def load_series(target: Union[str, Path]) -> List[Dict[str, Any]]:
    """All series records, torn trailing lines skipped."""
    records: List[Dict[str, Any]] = []
    with open(resolve_series_path(target), "r", encoding="utf8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a live writer
            if isinstance(rec, dict):
                records.append(rec)
    return records


def flatten_columns(record: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves of one record as dotted column paths
    (``wall_s``, ``layers.tman``, ``nodes.live``, ``mem.node_table.cur``,
    ``probes.homogeneity``, ...).  ``ctx``/``kind``/``round`` are keys,
    not columns."""
    out: Dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            out[prefix] = float(value)
        elif isinstance(value, dict):
            for k, v in value.items():
                walk(f"{prefix}.{k}" if prefix else str(k), v)

    for key, value in record.items():
        if key in ("kind", "ctx", "round"):
            continue
        walk(str(key), value)
    return out


SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 40) -> str:
    """A unicode sparkline of ``values`` downsampled to ``width``."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket means: width buckets over the full range.
        buckets: List[float] = []
        n = len(values)
        for b in range(width):
            lo = b * n // width
            hi = max(lo + 1, (b + 1) * n // width)
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - lo) / span * (top + 1)))] for v in values
    )


def _parse_round_range(spec: Optional[str]) -> Tuple[Optional[int], Optional[int]]:
    if not spec:
        return None, None
    if ":" not in spec:
        rnd = int(spec)
        return rnd, rnd
    lo_s, hi_s = spec.split(":", 1)
    return (int(lo_s) if lo_s else None), (int(hi_s) if hi_s else None)


def select_records(
    records: List[Dict[str, Any]],
    cell: Optional[str] = None,
    round_range: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Filter series records by cell (substring match against any ctx
    value) and by an inclusive ``lo:hi`` round range."""
    lo, hi = _parse_round_range(round_range)
    out = []
    for rec in records:
        if cell is not None:
            ctx = rec.get("ctx") or {}
            if not any(cell in str(v) for v in ctx.values()):
                continue
        rnd = rec.get("round")
        if lo is not None and (rnd is None or rnd < lo):
            continue
        if hi is not None and (rnd is None or rnd > hi):
            continue
        out.append(rec)
    return out


def _cell_key(rec: Dict[str, Any]) -> str:
    ctx = rec.get("ctx") or {}
    for key in ("task_id", "cell", "config"):
        if ctx.get(key):
            return str(ctx[key])
    return "-"


def format_series(
    target: Union[str, Path],
    cell: Optional[str] = None,
    column: Optional[str] = None,
    round_range: Optional[str] = None,
) -> str:
    """The ``repro obs series`` view: one row per column with count,
    min/max/last and a sparkline over rounds (record order)."""
    records = select_records(load_series(target), cell, round_range)
    if not records:
        return "no series records match"
    cells = sorted({_cell_key(r) for r in records})
    columns: Dict[str, List[float]] = {}
    rounds = [int(r.get("round", 0)) for r in records]
    for rec in records:
        for name, value in flatten_columns(rec).items():
            columns.setdefault(name, []).append(value)
    if column is not None:
        columns = {
            name: vals for name, vals in columns.items() if column in name
        }
        if not columns:
            return f"no series column matches {column!r}"
    out = [
        f"{len(records)} round record(s), rounds {min(rounds)}..{max(rounds)}, "
        f"{len(cells)} cell(s)"
    ]
    if len(cells) > 1:
        out.append(
            "cells: " + ", ".join(cells[:6]) + (" ..." if len(cells) > 6 else "")
        )
        out.append("(multiple cells interleaved — narrow with --cell)")
    out.append("")
    out.append(
        f"{'column':<28} {'n':>5} {'min':>12} {'max':>12} {'last':>12}  trend"
    )
    for name in sorted(columns):
        vals = columns[name]
        out.append(
            f"{name:<28} {len(vals):>5} {min(vals):>12.6g} "
            f"{max(vals):>12.6g} {vals[-1]:>12.6g}  {sparkline(vals)}"
        )
    return "\n".join(out)


def round_wall_values(target: Union[str, Path]) -> List[float]:
    """Every record's ``wall_s`` — the exact per-round wall sample
    ``repro obs diff`` compares when both runs carry series."""
    return [
        float(rec["wall_s"])
        for rec in load_series(target)
        if isinstance(rec.get("wall_s"), (int, float))
    ]


# Cadence is adopted from the environment at import so child processes
# (fork or spawn) inherit the parent's setting without replumbing.
set_probe_every(_probe_every_from_env())
