"""Profiling hooks: cProfile wrapping, memory sampling, ``profile.json``.

``--profile`` (or ``REPRO_PROFILE=1``) arms a :class:`Profiler` around a
run: the whole run executes under :mod:`cProfile`, an
:class:`ArraySampler` observer rides the simulation sampling peak RSS
and live array bytes (NodeTable + per-node ViewBuffers) each round, and
at the end everything — hot functions, peak memory, and the metrics
registry's per-phase/per-kernel histograms — lands in one
``obs/profile.json``.

All sampling is read-only: the observer draws no RNG, mutates no state,
and observers are outside ``state_digest``, so a profiled run's
trajectory and golden digests are bit-identical to an unprofiled one.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import resource
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from . import metrics

#: Whether a profiler is armed for this process (set by
#: :func:`repro.obs.configure`); :func:`repro.experiments.scenario.build_simulation`
#: checks it to attach an :class:`ArraySampler` to every simulation it
#: builds.
ACTIVE = False


def set_active(on: bool) -> None:
    global ACTIVE
    ACTIVE = bool(on)


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def array_bytes(sim) -> int:
    """Total bytes of the live array state of a simulation: the
    NodeTable's backing arrays plus every per-node ViewBuffer.  Pure
    accounting (``nbytes`` properties), no copies."""
    total = 0
    table = getattr(getattr(sim, "network", None), "table", None)
    if table is not None:
        total += int(getattr(table, "nbytes", 0))
    network = getattr(sim, "network", None)
    if network is not None:
        for node in network.nodes.values():
            for value in vars(node).values():
                nbytes = getattr(value, "nbytes", None)
                if isinstance(nbytes, int):
                    total += nbytes
    return total


class ArraySampler:
    """Simulation observer recording memory high-water marks into the
    metrics registry (``mem.peak_rss_bytes`` / ``mem.peak_array_bytes``
    gauges) every ``interval`` rounds.  Attached only when profiling is
    active; per-node ViewBuffer accounting is O(n) per sample, which a
    profiled run accepts by definition."""

    def __init__(self, interval: int = 1) -> None:
        self.interval = max(1, int(interval))

    def on_round_end(self, sim) -> None:
        if sim.round % self.interval:
            return
        reg = metrics.registry()
        reg.gauge_max("mem.peak_rss_bytes", peak_rss_bytes())
        reg.gauge_max("mem.peak_array_bytes", array_bytes(sim))


class Profiler:
    """One profiled run: ``start()`` ... work ... ``write(path)``."""

    def __init__(self, top: int = 40) -> None:
        self.top = top
        self._profile = cProfile.Profile()
        self._t0: Optional[float] = None

    def start(self) -> None:
        self._t0 = time.perf_counter()
        self._profile.enable()

    def stop(self) -> float:
        self._profile.disable()
        return time.perf_counter() - (self._t0 or time.perf_counter())

    def hot_functions(self) -> list:
        """Top functions by cumulative time, as JSON-ready dicts."""
        stats = pstats.Stats(self._profile)
        rows = []
        entries = sorted(
            stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
        )
        for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in entries[
            : self.top
        ]:
            rows.append(
                {
                    "function": f"{Path(filename).name}:{lineno}:{funcname}",
                    "ncalls": nc,
                    "tottime_s": round(tt, 6),
                    "cumtime_s": round(ct, 6),
                }
            )
        return rows

    def write(
        self,
        path: Union[str, Path],
        ctx: Optional[Dict[str, Any]] = None,
        wall_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Stop (if still running) and write ``profile.json``: context,
        wall time, peak memory, hot functions, and the full metrics
        snapshot (per-phase/per-kernel histograms included)."""
        if self._t0 is not None and wall_s is None:
            wall_s = self.stop()
        snap = metrics.registry().snapshot()
        report = {
            "kind": "profile",
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "ctx": dict(ctx or {}),
            "wall_s": round(wall_s, 6) if wall_s is not None else None,
            "peak_rss_bytes": peak_rss_bytes(),
            "peak_array_bytes": snap["gauges"].get("mem.peak_array_bytes"),
            "hot_functions": self.hot_functions(),
            "metrics": snap,
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return report
