"""The byte ledger: memory attribution at allocation chokepoints.

``repro.obs.mem`` answers "where did the bytes go, and in which round?"
for the array core and the batch engine.  The instrumented chokepoints
— :class:`~repro.sim.arrays.NodeTable`/``ViewBuffer`` column growth,
the padded kernel buffers in ``repro.sim.batch`` (topology merge pads,
dedup/merge kernel scratch, SPLIT pair blocks, migration pools),
checkpoint pickle blobs — report every allocation with a *family* (the
coarse series column) and a *site* (the concrete allocator, e.g.
``NodeTable.rows`` or ``tman.merge_pad``).

Two allocation kinds:

* :func:`add` — **persistent** growth (a backing array grew by
  ``delta`` bytes and stays).  Family/site current bytes move by the
  delta; peaks track the running current.
* :func:`scratch` — **transient** buffers (a padded kernel block that
  dies at the end of the call).  Current bytes are untouched; the
  family peak is bumped to ``cur + nbytes`` (the footprint while the
  scratch block was live) and the site peak to the largest single
  allocation.

Every peak remembers the simulation round it occurred in
(:func:`set_round`, fed by ``Simulation.step``), so the attribution
snapshot can say "``tman.merge_pad`` peaked at 38MB in round 21" — the
repair wave after the catastrophic failure.

The ledger is process-wide, thread-safe, and off by default behind the
same one-branch ``ENABLED`` fast path as metrics and spans; callers
must guard with ``if mem.ENABLED:`` so the disabled path stays within
the obs-gate budget.  Accounting is read-only — no RNG, no copies — so
trajectories and golden digests are bit-identical with the ledger on.

Per-family current/peak bytes ride the per-round series records
(:func:`series_fields`); the peak-attribution snapshot lands in
``obs/mem.json`` (:func:`write_snapshot`), max-merged across cells and
worker processes and cross-checked against the process peak RSS.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from . import profiling

#: The one global switch every ledger call site checks first.
ENABLED = False

_LOCK = threading.Lock()

#: Round stamp for peak attribution (set by the engine each round).
_ROUND = 0

# family -> {"cur", "peak", "peak_round"}
_FAMILIES: Dict[str, Dict[str, int]] = {}
# site -> {"family", "cur", "peak", "peak_round", "events"}
_SITES: Dict[str, Dict[str, Any]] = {}

_TOTAL_CUR = 0
_TOTAL_PEAK = 0
_TOTAL_PEAK_ROUND = 0


def set_enabled(on: bool) -> None:
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


def set_round(rnd: int) -> None:
    """Stamp the round subsequent allocations are attributed to."""
    global _ROUND
    _ROUND = int(rnd)


def reset() -> None:
    """Clear the ledger (a worker starting a fresh cell)."""
    global _TOTAL_CUR, _TOTAL_PEAK, _TOTAL_PEAK_ROUND, _ROUND
    with _LOCK:
        _FAMILIES.clear()
        _SITES.clear()
        _TOTAL_CUR = 0
        _TOTAL_PEAK = 0
        _TOTAL_PEAK_ROUND = 0
        _ROUND = 0


def _family_slot(family: str) -> Dict[str, int]:
    fam = _FAMILIES.get(family)
    if fam is None:
        fam = _FAMILIES[family] = {"cur": 0, "peak": 0, "peak_round": 0}
    return fam


def _site_slot(family: str, site: str) -> Dict[str, Any]:
    s = _SITES.get(site)
    if s is None:
        s = _SITES[site] = {
            "family": family,
            "cur": 0,
            "peak": 0,
            "peak_round": 0,
            "events": 0,
        }
    return s


def add(family: str, site: str, delta: int) -> None:
    """Account a **persistent** allocation change: ``delta`` bytes were
    added to (or, negative, released from) a long-lived backing array."""
    global _TOTAL_CUR, _TOTAL_PEAK, _TOTAL_PEAK_ROUND
    delta = int(delta)
    with _LOCK:
        fam = _family_slot(family)
        fam["cur"] += delta
        if fam["cur"] > fam["peak"]:
            fam["peak"] = fam["cur"]
            fam["peak_round"] = _ROUND
        s = _site_slot(family, site)
        s["cur"] += delta
        s["events"] += 1
        if s["cur"] > s["peak"]:
            s["peak"] = s["cur"]
            s["peak_round"] = _ROUND
        _TOTAL_CUR += delta
        if _TOTAL_CUR > _TOTAL_PEAK:
            _TOTAL_PEAK = _TOTAL_CUR
            _TOTAL_PEAK_ROUND = _ROUND


def scratch(family: str, site: str, nbytes: int) -> None:
    """Account a **transient** allocation: ``nbytes`` of scratch lived
    inside one call.  Bumps peaks (footprint while live), not current."""
    global _TOTAL_PEAK, _TOTAL_PEAK_ROUND
    nbytes = int(nbytes)
    if nbytes <= 0:
        return
    with _LOCK:
        fam = _family_slot(family)
        live = fam["cur"] + nbytes
        if live > fam["peak"]:
            fam["peak"] = live
            fam["peak_round"] = _ROUND
        s = _site_slot(family, site)
        s["events"] += 1
        if nbytes > s["peak"]:
            s["peak"] = nbytes
            s["peak_round"] = _ROUND
        live_total = _TOTAL_CUR + nbytes
        if live_total > _TOTAL_PEAK:
            _TOTAL_PEAK = live_total
            _TOTAL_PEAK_ROUND = _ROUND


# -- reading -----------------------------------------------------------------


def series_fields() -> Dict[str, Dict[str, int]]:
    """Per-family ``{"cur", "peak"}`` bytes for one series record."""
    with _LOCK:
        return {
            name: {"cur": fam["cur"], "peak": fam["peak"]}
            for name, fam in _FAMILIES.items()
        }


def total_peak() -> int:
    """Peak simultaneous tracked bytes — what the mem-gate gates."""
    with _LOCK:
        return _TOTAL_PEAK


def is_empty() -> bool:
    with _LOCK:
        return not _FAMILIES


def snapshot() -> Dict[str, Any]:
    """The peak-attribution snapshot: total/family/site peaks with the
    round each peak occurred in, cross-checked against process RSS."""
    with _LOCK:
        return {
            "kind": "mem",
            "total": {
                "cur": _TOTAL_CUR,
                "peak": _TOTAL_PEAK,
                "peak_round": _TOTAL_PEAK_ROUND,
            },
            "families": {
                name: dict(fam) for name, fam in sorted(_FAMILIES.items())
            },
            "sites": {name: dict(s) for name, s in sorted(_SITES.items())},
            "peak_rss_bytes": profiling.peak_rss_bytes(),
        }


# -- merging & persistence ---------------------------------------------------


def merge_snapshot(
    into: Dict[str, Any], snap: Dict[str, Any]
) -> Dict[str, Any]:
    """Max-merge one attribution snapshot into an accumulated one —
    peaks keep the larger value (and its round), ``events`` sum, so the
    merged document names the worst cell each site saw across a sweep."""
    tot_a, tot_b = into.setdefault(
        "total", {"cur": 0, "peak": 0, "peak_round": 0}
    ), snap.get("total", {})
    if tot_b.get("peak", 0) > tot_a.get("peak", 0):
        tot_a["peak"] = tot_b["peak"]
        tot_a["peak_round"] = tot_b.get("peak_round", 0)
    tot_a["cur"] = max(tot_a.get("cur", 0), tot_b.get("cur", 0))
    fams = into.setdefault("families", {})
    for name, fam in (snap.get("families") or {}).items():
        have = fams.get(name)
        if have is None:
            fams[name] = dict(fam)
        else:
            have["cur"] = max(have.get("cur", 0), fam.get("cur", 0))
            if fam.get("peak", 0) > have.get("peak", 0):
                have["peak"] = fam["peak"]
                have["peak_round"] = fam.get("peak_round", 0)
    sites = into.setdefault("sites", {})
    for name, s in (snap.get("sites") or {}).items():
        have = sites.get(name)
        if have is None:
            sites[name] = dict(s)
        else:
            have["events"] = have.get("events", 0) + s.get("events", 0)
            have["cur"] = max(have.get("cur", 0), s.get("cur", 0))
            if s.get("peak", 0) > have.get("peak", 0):
                have["peak"] = s["peak"]
                have["peak_round"] = s.get("peak_round", 0)
    into["peak_rss_bytes"] = max(
        into.get("peak_rss_bytes", 0), snap.get("peak_rss_bytes", 0)
    )
    into["kind"] = "mem"
    return into


def write_snapshot(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Merge this process's ledger into ``mem.json`` at ``path``.

    Read-modify-write under an advisory ``flock`` on the target (workers
    flush concurrently), written via a same-directory temp file +
    ``os.replace`` so readers never see a torn document.  Sink failures
    are swallowed — accounting must never kill a run."""
    if is_empty():
        return None
    snap = snapshot()
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            try:
                import fcntl

                fcntl.flock(fd, fcntl.LOCK_EX)
            except (ImportError, OSError):  # pragma: no cover - non-posix
                pass
            raw = b""
            try:
                raw = os.read(fd, 1 << 26)
            except OSError:
                pass
            merged: Dict[str, Any] = {}
            if raw.strip():
                try:
                    merged = json.loads(raw)
                except (ValueError, TypeError):
                    merged = {}
            merged = merge_snapshot(merged, snap)
            tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, path)
            return merged
        finally:
            os.close(fd)
    except OSError:  # pragma: no cover - sink failure must not kill runs
        return None


# -- reading back ------------------------------------------------------------


def resolve_mem_path(target: Union[str, Path]) -> Path:
    """``target`` may be a mem.json file, a run dir containing
    ``obs/mem.json``, or a dir containing ``mem.json``."""
    p = Path(target)
    if p.is_file():
        return p
    for cand in (p / "obs" / "mem.json", p / "mem.json"):
        if cand.is_file():
            return cand
    raise FileNotFoundError(f"no mem.json under {target}")


def load_mem(target: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(resolve_mem_path(target).read_text())


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GB"  # pragma: no cover - unreachable


def format_mem(target: Union[str, Path], top: int = 20) -> str:
    """The ``repro obs mem`` report: total + per-family peaks and the
    top allocation sites by peak bytes, each with its peak round."""
    doc = load_mem(target)
    out = []
    tot = doc.get("total", {})
    out.append(
        "peak tracked bytes: "
        f"{_fmt_bytes(tot.get('peak', 0))} "
        f"(round {tot.get('peak_round', 0)}); "
        f"peak RSS {_fmt_bytes(doc.get('peak_rss_bytes', 0))}"
    )
    fams = doc.get("families") or {}
    if fams:
        out.append("")
        out.append(f"{'family':<18} {'cur':>10} {'peak':>10} {'@round':>7}")
        for name, fam in sorted(
            fams.items(), key=lambda kv: -kv[1].get("peak", 0)
        ):
            out.append(
                f"{name:<18} {_fmt_bytes(fam.get('cur', 0)):>10} "
                f"{_fmt_bytes(fam.get('peak', 0)):>10} "
                f"{fam.get('peak_round', 0):>7}"
            )
    sites = doc.get("sites") or {}
    if sites:
        out.append("")
        out.append(
            f"{'site':<34} {'family':<16} {'peak':>10} {'@round':>7} "
            f"{'events':>8}"
        )
        ranked = sorted(sites.items(), key=lambda kv: -kv[1].get("peak", 0))
        for name, s in ranked[:top]:
            out.append(
                f"{name:<34} {s.get('family', ''):<16} "
                f"{_fmt_bytes(s.get('peak', 0)):>10} "
                f"{s.get('peak_round', 0):>7} {s.get('events', 0):>8}"
            )
        if len(ranked) > top:
            out.append(f"... {len(ranked) - top} more site(s)")
    return "\n".join(out)
