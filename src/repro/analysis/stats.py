"""Statistics helpers: mean ± confidence interval over repeated runs.

The paper averages over 25 experiments and reports 95% confidence
intervals (Student's t).  :func:`mean_ci` reproduces that; the scipy
t-table is used when available, with a normal-approximation fallback so
the core library only hard-depends on numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

try:  # scipy is an optional (dev) dependency
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None

#: Two-sided 97.5% normal quantile, the large-sample fallback.
_Z_975 = 1.959963984540054


@dataclass(frozen=True)
class MeanCI:
    """A mean with its half-width confidence interval."""

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.half_width:.3f}"


def _t_quantile(confidence: float, dof: int) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    return _Z_975 if abs(confidence - 0.95) < 1e-9 else _Z_975


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Sample mean with a two-sided Student-t confidence interval."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("mean_ci needs at least one value")
    n = len(data)
    mean = float(np.mean(data))
    if n == 1:
        return MeanCI(mean, 0.0, 1, confidence)
    sd = float(np.std(data, ddof=1))
    half = _t_quantile(confidence, n - 1) * sd / math.sqrt(n)
    return MeanCI(mean, half, n, confidence)


def aggregate_series(
    runs: Sequence[Sequence[float]],
) -> List[float]:
    """Round-wise mean across repeated runs (truncated to the shortest
    run, so ragged inputs do not mix rounds)."""
    if not runs:
        return []
    length = min(len(run) for run in runs)
    if length == 0:
        return []
    arr = np.array([list(run)[:length] for run in runs], dtype=float)
    return [float(v) for v in np.nanmean(arr, axis=0)]


def aggregate_series_ci(
    runs: Sequence[Sequence[float]], confidence: float = 0.95
) -> List[MeanCI]:
    """Round-wise mean ± CI across repeated runs."""
    if not runs:
        return []
    length = min(len(run) for run in runs)
    return [
        mean_ci([run[rnd] for run in runs], confidence) for rnd in range(length)
    ]


def mean_ci_over_cells(
    cells: Sequence[Dict],
    field: str,
    confidence: float = 0.95,
) -> MeanCI:
    """Mean ± CI of one summary scalar over result-store cell records.

    The analysis-side reader for :class:`repro.runtime.store.ResultStore`
    sweeps: ``mean_ci_over_cells(store.cells(replication=4), "reshaping_time")``
    reproduces a Table II entry from persisted results without
    re-simulating.  ``None`` summaries (e.g. non-converged runs) are
    skipped, mirroring the paper's protocol.
    """
    values: List[float] = []
    for cell in cells:
        summary = cell.get("summary") or {}
        value = summary.get(field)
        if value is None:
            value = (summary.get("final") or {}).get(field)
        if value is not None:
            values.append(float(value))
    if not values:
        raise ValueError(f"no cell carries a {field!r} summary value")
    return mean_ci(values, confidence)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Min/mean/max/std summary of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("summarize needs at least one value")
    return {
        "min": float(data.min()),
        "mean": float(data.mean()),
        "max": float(data.max()),
        "std": float(data.std(ddof=1)) if data.size > 1 else 0.0,
        "n": int(data.size),
    }
