"""Seed-ensemble confidence-band math.

The reproduction repeatedly answers one statistical question: *are two
seed ensembles of a metric compatible, or is one systematically off?*
The cross-engine equivalence suite asks it of batch-vs-event ensembles;
the claims gate (:mod:`repro.eval`) asks it of an observed ensemble
against a recorded expectation.  Both use the same rule, defined once
here: two ensemble means agree when their gap is at most ``z`` combined
standard errors plus an absolute ``floor`` (the floor keeps
near-zero-variance metrics — message cost, converged homogeneity —
comparable instead of manufacturing infinite z-scores).

Everything is pure math over sequences of floats, so the hypothesis
property suite (``tests/test_analysis_bands.py``) can pin the
invariants: symmetry, scale/shift behaviour, monotonicity in the
ensemble size, and the degenerate single-seed ensemble (whose variance
contribution is *zero*, not NaN).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Default combined-standard-error multiple: a 3σ band keeps the
#: per-metric false-failure rate well under 1% while a real systematic
#: bias still shows up as z ≫ 3.
DEFAULT_Z = 3.0


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the ensemble mean, ``sd / sqrt(n)``.

    A single-seed (or empty) ensemble carries no spread information;
    its standard error is defined as ``0.0`` — the caller's absolute
    floor is then the entire band, which is exactly what a degenerate
    ensemble deserves.
    """
    data = np.asarray(list(values), dtype=float)
    n = data.size
    if n < 2:
        return 0.0
    return se_from_spread(float(np.std(data, ddof=1)), n)


def se_from_spread(sd: float, n: int) -> float:
    """``sd / sqrt(n)`` — the standard-error formula itself, exposed so
    the property tests can check monotonicity in ``n`` directly."""
    if n < 1:
        raise ValueError(f"ensemble size must be >= 1, got {n}")
    return abs(float(sd)) / math.sqrt(n)


def combined_se(a: Sequence[float], b: Sequence[float]) -> float:
    """Standard error of the *difference* of two ensemble means,
    ``sqrt(se_a² + se_b²)`` (Welch-style, no equal-variance assumption)."""
    return math.hypot(standard_error(a), standard_error(b))


def ensemble_mean(values: Sequence[float]) -> float:
    data = [float(v) for v in values]
    if not data:
        raise ValueError("ensemble_mean needs at least one value")
    return float(np.mean(data))


@dataclass(frozen=True)
class Band:
    """One band comparison: a gap between two means against its limit."""

    gap: float
    limit: float
    z: float
    floor: float

    @property
    def within(self) -> bool:
        return self.gap <= self.limit

    @property
    def margin(self) -> float:
        """How much head-room is left (negative = the band is blown)."""
        return self.limit - self.gap

    def describe(self) -> str:
        verdict = "within" if self.within else "EXCEEDS"
        return (
            f"gap {self.gap:.4f} {verdict} band {self.limit:.4f} "
            f"(z={self.z:g}, floor={self.floor:g})"
        )


def equivalence_band(
    a: Sequence[float],
    b: Sequence[float],
    z: float = DEFAULT_Z,
    floor: float = 0.0,
) -> Band:
    """Do two seed ensembles of the same metric agree?

    The band limit is ``z * combined_se(a, b) + floor``; the gap is the
    absolute difference of the ensemble means.  Symmetric in ``a``/``b``.
    """
    gap = abs(ensemble_mean(a) - ensemble_mean(b))
    limit = z * combined_se(a, b) + floor
    return Band(gap=gap, limit=limit, z=z, floor=floor)


def value_band(
    values: Sequence[float],
    expected: float,
    tolerance: float,
) -> Band:
    """Does an observed ensemble mean match a recorded expectation?

    The expectation side carries no sampling error (its uncertainty was
    baked into ``tolerance`` when the expectation was recorded), so the
    limit is the tolerance itself.
    """
    gap = abs(ensemble_mean(values) - float(expected))
    return Band(gap=gap, limit=float(tolerance), z=0.0, floor=float(tolerance))


def expected_value_and_tolerance(
    ensembles: Sequence[Sequence[float]],
    z: float = DEFAULT_Z,
    floor: float = 0.0,
    digits: int = 4,
) -> Tuple[float, float]:
    """Derive a recorded expectation from one or more generating
    ensembles (``repro eval run --update-expected``).

    The expected value is the pooled mean across every ensemble (for
    band claims the generators are the event- and batch-engine runs, so
    the expectation sits between the engines).  The tolerance must let
    every generating ensemble's *mean* pass with ``z`` standard errors
    of head-room — ``max_e(|mean_e - value| + z·se_e)`` — and never
    shrinks below ``floor``.  Both are rounded (value to ``digits``,
    tolerance *up* at ``digits``), which keeps the stored expectation
    file stable and guarantees a zero-width tolerance genuinely fails.
    """
    pools = [[float(v) for v in ensemble] for ensemble in ensembles if ensemble]
    if not pools:
        raise ValueError("expected_value_and_tolerance needs >= 1 ensemble")
    pooled = [v for pool in pools for v in pool]
    value = float(np.mean(pooled))
    tol = floor
    for pool in pools:
        need = abs(ensemble_mean(pool) - value) + z * standard_error(pool)
        tol = max(tol, need)
    scale = 10.0**digits
    return round(value, digits), math.ceil(tol * scale) / scale
