"""Statistical aggregation across repeated experiment runs."""

from .bands import (
    Band,
    combined_se,
    ensemble_mean,
    equivalence_band,
    expected_value_and_tolerance,
    se_from_spread,
    standard_error,
    value_band,
)
from .stats import MeanCI, aggregate_series, aggregate_series_ci, mean_ci, summarize

__all__ = [
    "MeanCI",
    "mean_ci",
    "aggregate_series",
    "aggregate_series_ci",
    "summarize",
    "Band",
    "standard_error",
    "se_from_spread",
    "combined_se",
    "ensemble_mean",
    "equivalence_band",
    "value_band",
    "expected_value_and_tolerance",
]
