"""Statistical aggregation across repeated experiment runs."""

from .stats import MeanCI, aggregate_series, aggregate_series_ci, mean_ci, summarize

__all__ = [
    "MeanCI",
    "mean_ci",
    "aggregate_series",
    "aggregate_series_ci",
    "summarize",
]
