"""Homogeneity: how well the original shape is conserved (Sec. IV-A).

For every initial data point ``x``, measure the distance to the nearest
node *holding* ``x`` as a guest; if no alive node holds it (the point
was lost in the failure), fall back to the nearest node of the whole
network (the paper's ĝuests⁻¹ definition).  Homogeneity is the mean of
these distances over all data points; lower is better, and an ideally
uniform distribution of N nodes over an area A stays below
``H = 0.5·sqrt(A/N)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..sim.network import SimNode
from ..spaces.base import Space
from ..types import DataPoint, PointId


def holder_index(nodes: Sequence[SimNode]) -> Dict[PointId, List[SimNode]]:
    """Map each point id to the alive nodes holding it as a guest
    (the inverse image ``guests⁻¹``)."""
    index: Dict[PointId, List[SimNode]] = {}
    for node in nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        for pid in state.guests:
            index.setdefault(pid, []).append(node)
    return index


def _positions_batch(space: Space, nodes: Sequence[SimNode]):
    """Current positions of ``nodes`` as a packed kernel batch, read
    straight from the node table's coordinate column when every node is
    table-backed (the normal case), packed from the position tuples
    otherwise (detached test nodes)."""
    table = nodes[0]._table if nodes else None
    if (
        table is not None
        and table.is_vector
        and all(n._table is table for n in nodes)
    ):
        return table.gather_rows([n._row for n in nodes])
    return space.pack_batch([node.pos for node in nodes])


def homogeneity(
    space: Space,
    points: Sequence[DataPoint],
    alive_nodes: Sequence[SimNode],
) -> float:
    """Mean distance from each original data point to its nearest
    primary holder (or nearest node at all, if the point was lost)."""
    if not points:
        return 0.0
    if not alive_nodes:
        raise ValueError("homogeneity is undefined on an empty network")
    holders = holder_index(alive_nodes)
    all_positions = _positions_batch(space, alive_nodes)
    total = 0.0
    for point in points:
        holding = holders.get(point.pid)
        if holding:
            if len(holding) == 1:
                total += space.distance(point.coord, holding[0].pos)
            else:
                total += float(
                    np.min(
                        space.distance_block(
                            point.coord, _positions_batch(space, holding)
                        )
                    )
                )
        else:
            total += float(np.min(space.distance_block(point.coord, all_positions)))
    return total / len(points)


def lost_points(
    points: Sequence[DataPoint], alive_nodes: Sequence[SimNode]
) -> List[DataPoint]:
    """Points with no alive primary holder."""
    holders = holder_index(alive_nodes)
    return [point for point in points if point.pid not in holders]


def surviving_fraction(
    points: Sequence[DataPoint], alive_nodes: Sequence[SimNode]
) -> float:
    """Fraction of data points held (as guest *or* ghost) by at least
    one alive node — the paper's *reliability* (Table II).

    A point survives a failure "if either its primary holder ... or one
    of its backup nodes ... survives" (Sec. III-D).
    """
    if not points:
        return 1.0
    held: set = set()
    for node in alive_nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        held.update(state.guests)
        for ghost in state.ghosts.values():
            held.update(ghost)
    return sum(1 for point in points if point.pid in held) / len(points)
