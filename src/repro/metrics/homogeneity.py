"""Homogeneity: how well the original shape is conserved (Sec. IV-A).

For every initial data point ``x``, measure the distance to the nearest
node *holding* ``x`` as a guest; if no alive node holds it (the point
was lost in the failure), fall back to the nearest node of the whole
network (the paper's ĝuests⁻¹ definition).  Homogeneity is the mean of
these distances over all data points; lower is better, and an ideally
uniform distribution of N nodes over an area A stays below
``H = 0.5·sqrt(A/N)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..sim.network import SimNode
from ..spaces.base import Space
from ..types import DataPoint, PointId


def holder_index(nodes: Sequence[SimNode]) -> Dict[PointId, List[SimNode]]:
    """Map each point id to the alive nodes holding it as a guest
    (the inverse image ``guests⁻¹``)."""
    index: Dict[PointId, List[SimNode]] = {}
    for node in nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        for pid in state.guests:
            index.setdefault(pid, []).append(node)
    return index


def _positions_batch(space: Space, nodes: Sequence[SimNode]):
    """Current positions of ``nodes`` as a packed kernel batch, read
    straight from the node table's coordinate column when every node is
    table-backed (the normal case), packed from the position tuples
    otherwise (detached test nodes)."""
    table = nodes[0]._table if nodes else None
    if (
        table is not None
        and table.is_vector
        and all(n._table is table for n in nodes)
    ):
        return table.gather_rows([n._row for n in nodes])
    return space.pack_batch([node.pos for node in nodes])


def homogeneity(
    space: Space,
    points: Sequence[DataPoint],
    alive_nodes: Sequence[SimNode],
) -> float:
    """Mean distance from each original data point to its nearest
    primary holder (or nearest node at all, if the point was lost).

    The dominant case — a point with exactly one holder, which is every
    point of a converged system — is batched into one row-paired
    :meth:`~repro.spaces.base.Space.distance_rows` kernel; lost points
    share one pairwise block against the whole network.  Values are
    float-identical to the historical per-point scalar loop (pinned by
    the equivalence tests in ``tests/test_metrics_homogeneity``).
    """
    if not points:
        return 0.0
    if not alive_nodes:
        raise ValueError("homogeneity is undefined on an empty network")
    holders = holder_index(alive_nodes)
    all_positions = _positions_batch(space, alive_nodes)
    total = 0.0
    single_pts: list = []
    single_holder_pos: list = []
    multi_pts: list = []
    multi_counts: list = []
    multi_holders: list = []
    lost_pts: list = []
    for point in points:
        holding = holders.get(point.pid)
        if holding:
            if len(holding) == 1:
                single_pts.append(point.coord)
                single_holder_pos.append(holding[0].pos)
            else:
                multi_pts.append(point.coord)
                multi_counts.append(len(holding))
                multi_holders.extend(holding)
        else:
            lost_pts.append(point.coord)
    if single_pts:
        total += float(
            np.sum(
                space.distance_rows(
                    space.pack_batch(single_pts),
                    space.pack_batch(single_holder_pos),
                )
            )
        )
    if multi_pts:
        # One flat (point, holder) distance batch, min-reduced per
        # point — the recovery-spike case where points are briefly
        # multiply held.
        counts = np.asarray(multi_counts)
        batch = space.pack_batch(multi_pts)
        positions = _positions_batch(space, multi_holders)
        if isinstance(batch, np.ndarray) and isinstance(positions, np.ndarray):
            rep = np.repeat(batch, counts, axis=0)
            d = space.distance_rows(rep, positions)
            offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            total += float(np.sum(np.minimum.reduceat(d, offsets)))
        else:  # object-coordinate spaces: per-point scalar kernels
            offset = 0
            for coord, count in zip(multi_pts, counts):
                total += float(
                    np.min(
                        space.distance_block(
                            coord, positions[offset : offset + count]
                        )
                    )
                )
                offset += count
    if lost_pts:
        # Row i of ``pairwise`` is float-identical to
        # ``distance_block(lost_pts[i], all_positions)``.
        total += float(
            np.sum(
                np.min(
                    space.pairwise(space.pack_batch(lost_pts), all_positions),
                    axis=1,
                )
            )
        )
    return total / len(points)


def lost_points(
    points: Sequence[DataPoint], alive_nodes: Sequence[SimNode]
) -> List[DataPoint]:
    """Points with no alive primary holder."""
    holders = holder_index(alive_nodes)
    return [point for point in points if point.pid not in holders]


def surviving_fraction(
    points: Sequence[DataPoint], alive_nodes: Sequence[SimNode]
) -> float:
    """Fraction of data points held (as guest *or* ghost) by at least
    one alive node — the paper's *reliability* (Table II).

    A point survives a failure "if either its primary holder ... or one
    of its backup nodes ... survives" (Sec. III-D).
    """
    if not points:
        return 1.0
    held: set = set()
    for node in alive_nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        held.update(state.guests)
        for ghost in state.ghosts.values():
            held.update(ghost)
    return sum(1 for point in points if point.pid in held) / len(points)
