"""Homogeneity: how well the original shape is conserved (Sec. IV-A).

For every initial data point ``x``, measure the distance to the nearest
node *holding* ``x`` as a guest; if no alive node holds it (the point
was lost in the failure), fall back to the nearest node of the whole
network (the paper's ĝuests⁻¹ definition).  Homogeneity is the mean of
these distances over all data points; lower is better, and an ideally
uniform distribution of N nodes over an area A stays below
``H = 0.5·sqrt(A/N)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..sim.network import SimNode
from ..spaces.base import Space
from ..types import DataPoint, PointId


def holder_index(nodes: Sequence[SimNode]) -> Dict[PointId, List[SimNode]]:
    """Map each point id to the alive nodes holding it as a guest
    (the inverse image ``guests⁻¹``)."""
    index: Dict[PointId, List[SimNode]] = {}
    for node in nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        for pid in state.guests:
            index.setdefault(pid, []).append(node)
    return index


def _positions_batch(space: Space, nodes: Sequence[SimNode]):
    """Current positions of ``nodes`` as a packed kernel batch, read
    straight from the node table's coordinate column when every node is
    table-backed (the normal case), packed from the position tuples
    otherwise (detached test nodes)."""
    table = nodes[0]._table if nodes else None
    if (
        table is not None
        and table.is_vector
        and all(n._table is table for n in nodes)
    ):
        return table.gather_rows([n._row for n in nodes])
    return space.pack_batch([node.pos for node in nodes])


def homogeneity(
    space: Space,
    points: Sequence[DataPoint],
    alive_nodes: Sequence[SimNode],
) -> float:
    """Mean distance from each original data point to its nearest
    primary holder (or nearest node at all, if the point was lost).

    The dominant case — a point with exactly one holder, which is every
    point of a converged system — is batched into one row-paired
    :meth:`~repro.spaces.base.Space.distance_rows` kernel; lost points
    share one pairwise block against the whole network.  Values are
    float-identical to the historical per-point scalar loop (pinned by
    the equivalence tests in ``tests/test_metrics_homogeneity``).

    Table-backed networks (every simulation run) take a flat-array
    route: holder multiplicity via ``bincount`` instead of the
    dict-of-lists index, positions read straight off the coordinate
    column.  Per-point distances, reduction order and therefore the
    result are bit-identical to the generic path below.
    """
    if not points:
        return 0.0
    if not alive_nodes:
        raise ValueError("homogeneity is undefined on an empty network")
    table = alive_nodes[0]._table
    if table is not None and table.is_vector and all(
        n._table is table for n in alive_nodes
    ):
        return _homogeneity_table(space, points, alive_nodes, table)
    holders = holder_index(alive_nodes)
    all_positions = _positions_batch(space, alive_nodes)
    total = 0.0
    single_pts: list = []
    single_holder_pos: list = []
    multi_pts: list = []
    multi_counts: list = []
    multi_holders: list = []
    lost_pts: list = []
    for point in points:
        holding = holders.get(point.pid)
        if holding:
            if len(holding) == 1:
                single_pts.append(point.coord)
                single_holder_pos.append(holding[0].pos)
            else:
                multi_pts.append(point.coord)
                multi_counts.append(len(holding))
                multi_holders.extend(holding)
        else:
            lost_pts.append(point.coord)
    if single_pts:
        total += float(
            np.sum(
                space.distance_rows(
                    space.pack_batch(single_pts),
                    space.pack_batch(single_holder_pos),
                )
            )
        )
    if multi_pts:
        # One flat (point, holder) distance batch, min-reduced per
        # point — the recovery-spike case where points are briefly
        # multiply held.
        counts = np.asarray(multi_counts)
        batch = space.pack_batch(multi_pts)
        positions = _positions_batch(space, multi_holders)
        if isinstance(batch, np.ndarray) and isinstance(positions, np.ndarray):
            rep = np.repeat(batch, counts, axis=0)
            d = space.distance_rows(rep, positions)
            offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            total += float(np.sum(np.minimum.reduceat(d, offsets)))
        else:  # object-coordinate spaces: per-point scalar kernels
            offset = 0
            for coord, count in zip(multi_pts, counts):
                total += float(
                    np.min(
                        space.distance_block(
                            coord, positions[offset : offset + count]
                        )
                    )
                )
                offset += count
    if lost_pts:
        # Row i of ``pairwise`` is float-identical to
        # ``distance_block(lost_pts[i], all_positions)``.
        total += float(
            np.sum(
                np.min(
                    space.pairwise(space.pack_batch(lost_pts), all_positions),
                    axis=1,
                )
            )
        )
    return total / len(points)


def _homogeneity_table(
    space: Space,
    points: Sequence[DataPoint],
    alive_nodes: Sequence[SimNode],
    table,
) -> float:
    """Flat-array :func:`homogeneity` for table-backed nodes (see the
    docstring there; single/multi/lost points are accumulated in the
    same order with the same kernels, so values match bit for bit)."""
    pid_list: list = []
    row_list: list = []
    for node in alive_nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        g = state.guests
        if g:
            pid_list.extend(g)
            row_list.extend([node._row] * len(g))
    npts = len(points)
    pt_pids = np.fromiter((p.pid for p in points), np.int64, npts)
    pt_coords = space.pack_batch([p.coord for p in points])
    hp = np.asarray(pid_list, dtype=np.int64)
    hr = np.asarray(row_list, dtype=np.int64)
    size = int(max(hp.max(initial=-1), pt_pids.max(initial=-1))) + 1
    counts = np.bincount(hp, minlength=size)
    pcount = counts[pt_pids]
    pos_all = table.coords_rows()
    total = 0.0
    single = pcount == 1
    if single.any():
        hrow = np.zeros(size, dtype=np.int64)
        hrow[hp] = hr  # unique writer for single-holder pids
        rows = hrow[pt_pids[single]]
        total += float(
            np.sum(space.distance_rows(pt_coords[single], pos_all[rows]))
        )
    if pcount.max(initial=0) > 1:
        # Multiply-held points (recovery spikes): group the holder
        # entries by pid, walk the multi points in input order and
        # min-reduce each point's group — the min over the same holder
        # set is order-independent, so the values match the generic
        # path's holder-list order exactly.
        in_pts = np.zeros(size, dtype=bool)
        in_pts[pt_pids] = True
        hsel = (counts[hp] > 1) & in_pts[hp]
        sub_p = hp[hsel]
        sub_r = hr[hsel]
        order = np.argsort(sub_p, kind="stable")
        sub_p = sub_p[order]
        sub_r = sub_r[order]
        uniq, start, grp = np.unique(sub_p, return_index=True, return_counts=True)
        start_of = np.zeros(size, dtype=np.int64)
        count_of = np.zeros(size, dtype=np.int64)
        start_of[uniq] = start
        count_of[uniq] = grp
        multi = pcount > 1
        mpids = pt_pids[multi]
        cnts = count_of[mpids]
        idx = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(start_of[mpids], cnts)]
        )
        rep = np.repeat(pt_coords[multi], cnts, axis=0)
        d = space.distance_rows(rep, pos_all[sub_r[idx]])
        offsets = np.concatenate([[0], np.cumsum(cnts)[:-1]])
        total += float(np.sum(np.minimum.reduceat(d, offsets)))
    lost = pcount == 0
    if lost.any():
        total += float(
            np.sum(
                np.min(
                    space.pairwise(
                        pt_coords[lost], _positions_batch(space, alive_nodes)
                    ),
                    axis=1,
                )
            )
        )
    return total / len(points)


def lost_points(
    points: Sequence[DataPoint], alive_nodes: Sequence[SimNode]
) -> List[DataPoint]:
    """Points with no alive primary holder."""
    holders = holder_index(alive_nodes)
    return [point for point in points if point.pid not in holders]


def surviving_fraction(
    points: Sequence[DataPoint], alive_nodes: Sequence[SimNode]
) -> float:
    """Fraction of data points held (as guest *or* ghost) by at least
    one alive node — the paper's *reliability* (Table II).

    A point survives a failure "if either its primary holder ... or one
    of its backup nodes ... survives" (Sec. III-D).
    """
    if not points:
        return 1.0
    held: set = set()
    for node in alive_nodes:
        state = getattr(node, "poly", None)
        if state is None:
            continue
        held.update(state.guests)
        for ghost in state.ghosts.values():
            held.update(ghost)
    return sum(1 for point in points if point.pid in held) / len(points)
