"""Proximity: quality of the constructed neighbourhoods (Sec. IV-A).

The main metric of the original T-Man paper: the mean distance between
a node and its k closest overlay neighbours (k = 4 here, "we represent
the 4 closest nodes returned by T-Man").  Lower is better; on a unit
grid the optimum is 1.0 (the four grid neighbours).

Distances are measured between *current true positions*: a neighbour's
view entry may record a stale coordinate, but what matters for routing
quality is where the neighbour actually is.
"""

from __future__ import annotations


import numpy as np

from ..sim.arrays import ViewBuffer
from ..sim.engine import Simulation
from ..sim.network import SimNode
from ..spaces.base import Space


def node_proximity(
    space: Space, sim: Simulation, node: SimNode, k: int = 4
) -> float:
    """Mean distance from ``node`` to its ``k`` closest alive T-Man
    neighbours (by true position).  Returns ``nan`` if the node has no
    alive neighbour at all."""
    view = getattr(node, "tman_view", None)
    if not view:
        return float("nan")
    if isinstance(view, ViewBuffer):
        # Array path: liveness mask over the id column, then one gather
        # of the *current* positions from the node table.
        ids, _ = view.arrays()
        alive = ids[sim.network.alive_mask(ids)]
        if len(alive) == 0:
            return float("nan")
        positions = sim.network.positions_of(alive)
    else:
        coords = [
            sim.network.node(nid).pos
            for nid in view
            if sim.network.is_alive(nid)
        ]
        if not coords:
            return float("nan")
        positions = space.pack_batch(coords)
    dists = np.sort(space.distance_block(node.pos, positions))
    return float(np.mean(dists[: min(k, len(dists))]))


def _proximity_batch(space: Space, sim, topo, k: int) -> float:
    """Whole-network proximity in one kernel over the batch engine's
    padded view arrays (same definition as the scalar path: mean over
    nodes of the mean distance to their k closest alive view entries,
    by current true position)."""
    table = sim.network.table
    act = np.flatnonzero(table.alive_rows())
    if len(act) == 0:
        return float("nan")
    ids = topo._ids[act]
    alive = sim.alive_entry_mask(ids)
    positions = np.zeros(ids.shape + (space.dim,))
    if alive.any():
        positions[alive] = table.gather(ids[alive])
    d = np.sqrt(space.rank_sq_rows(table.coords_rows()[act], positions))
    d = np.where(alive, d, np.inf)
    counts = np.minimum(alive.sum(axis=1), k)
    has = counts > 0
    if not has.any():
        return float("nan")
    kk = min(k, d.shape[1])
    smallest = np.partition(d, kk - 1, axis=1)[:, :kk] if kk < d.shape[1] else d
    smallest = np.sort(smallest, axis=1)
    csum = np.cumsum(np.where(np.isfinite(smallest), smallest, 0.0), axis=1)
    means = csum[np.arange(len(act)), np.maximum(counts - 1, 0)] / np.maximum(
        counts, 1
    )
    return float(np.mean(means[has]))


def proximity(space: Space, sim: Simulation, k: int = 4) -> float:
    """Network-wide mean proximity over all alive nodes."""
    topo = None
    if hasattr(sim, "detected_entry_mask"):  # batch engine
        from ..sim.batch.topology import _BatchTopologyBase

        topo = next(
            (
                layer
                for layer in getattr(sim, "layers", ())
                if isinstance(layer, _BatchTopologyBase)
            ),
            None,
        )
    if topo is not None:
        return _proximity_batch(space, sim, topo, k)
    values = [
        node_proximity(space, sim, node, k) for node in sim.network.alive_nodes()
    ]
    values = [v for v in values if not np.isnan(v)]
    if not values:
        return float("nan")
    return float(np.mean(values))
