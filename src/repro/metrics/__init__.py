"""The paper's evaluation metrics (Sec. IV-A).

Five metrics: proximity (neighbourhood quality), homogeneity (shape
quality), reshaping time (rounds to re-converge under the reference
homogeneity), storage overhead (data points per node) and message cost
(abstract units per node per round).
"""

from .balance import gini, guest_counts, load_balance
from .collector import ALL_METRICS, MetricsRecorder
from .homogeneity import (
    holder_index,
    homogeneity,
    lost_points,
    surviving_fraction,
)
from .messages import layer_share, per_node_cost, per_node_series
from .proximity import node_proximity, proximity
from .reshaping import reference_homogeneity, reshaping_time
from .storage import average_storage, node_storage, total_unique_points

__all__ = [
    "MetricsRecorder",
    "ALL_METRICS",
    "homogeneity",
    "holder_index",
    "lost_points",
    "surviving_fraction",
    "proximity",
    "node_proximity",
    "reference_homogeneity",
    "reshaping_time",
    "average_storage",
    "node_storage",
    "total_unique_points",
    "per_node_cost",
    "per_node_series",
    "layer_share",
    "load_balance",
    "guest_counts",
    "gini",
]
