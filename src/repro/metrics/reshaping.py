"""Reference homogeneity and reshaping time (Sec. IV-A).

The paper declares the shape "successfully reshaped" when measured
homogeneity drops below the ideal-distribution bound

    H^{|N|}_A = 0.5 * sqrt(A / |N|)

and defines the *reshaping time* as the number of rounds needed to get
there after a perturbation.  For the 80×40 unit torus: H = 0.5 before
the failure (N = 3200) and H = √2/2 ≈ 0.71 after it (N = 1600).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def reference_homogeneity(area: float, n_nodes: int) -> float:
    """The ideal bound ``H = 0.5 * sqrt(area / n_nodes)``."""
    if area <= 0:
        raise ValueError("area must be positive")
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    return 0.5 * math.sqrt(area / n_nodes)


def reshaping_time(
    homogeneity_series: Sequence[float],
    perturbation_round: int,
    threshold: float,
) -> Optional[int]:
    """Rounds needed after a perturbation to bring homogeneity under
    ``threshold``.

    ``homogeneity_series[r]`` must be the value measured at the *end* of
    round ``r``.  The perturbation fires at the start of
    ``perturbation_round``, so that round is the first one that can
    count; if its end-of-round homogeneity is already under the
    threshold the reshaping time is 1.  Returns ``None`` when the series
    never re-crosses the threshold.
    """
    if perturbation_round < 0:
        raise ValueError("perturbation_round cannot be negative")
    for rnd in range(perturbation_round, len(homogeneity_series)):
        if homogeneity_series[rnd] <= threshold:
            return rnd - perturbation_round + 1
    return None
