"""Load-balance metrics over guest assignments.

The paper's conclusion lists the protocol's load-balancing behaviour as
future work; these metrics make it measurable.  Guests are the unit of
load: a node primary-holding many points serves a larger zone of the
shape (more keys, more subscriptions, ...).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..sim.network import SimNode


def guest_counts(alive_nodes: Sequence[SimNode]) -> np.ndarray:
    """Guest-set size per alive node (0 for nodes without state)."""
    n = len(alive_nodes)
    return np.fromiter(
        (
            state.n_guests if (state := getattr(node, "poly", None)) is not None else 0
            for node in alive_nodes
        ),
        dtype=float,
        count=n,
    )


def load_balance(alive_nodes: Sequence[SimNode]) -> Dict[str, float]:
    """Summary of guest-load distribution.

    Returns ``max_over_mean`` (1.0 = perfectly balanced), ``gini``
    (0 = equal shares, →1 = one node holds everything) and the raw
    ``max``/``mean``.
    """
    if not alive_nodes:
        raise ValueError("load balance is undefined on an empty network")
    counts = guest_counts(alive_nodes)
    mean = float(counts.mean())
    peak = float(counts.max())
    return {
        "mean": mean,
        "max": peak,
        "max_over_mean": peak / mean if mean > 0 else float("inf"),
        "gini": gini(counts),
    }


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly equal)."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("gini of an empty sample is undefined")
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    # Standard closed form over the sorted sample.
    index = np.arange(1, n + 1)
    return float((2.0 * np.dot(index, arr) - (n + 1) * total) / (n * total))
