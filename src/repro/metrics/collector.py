"""Per-round metrics collection, as a simulation observer."""

from __future__ import annotations

import csv
from typing import Dict, List, Sequence, Tuple

from ..sim.engine import Simulation
from ..spaces.base import Space
from ..types import DataPoint
from .homogeneity import homogeneity
from .messages import DEFAULT_EXCLUDE, per_node_cost
from .proximity import proximity
from .storage import average_storage

#: Metrics the recorder knows how to compute each round.
ALL_METRICS = ("homogeneity", "proximity", "storage", "message_cost")


class MetricsRecorder:
    """Observer computing the paper's four time-series every round.

    ``series`` maps a metric name to its per-round list; index ``r``
    holds the value measured at the end of round ``r``.  ``n_alive`` is
    always recorded.
    """

    def __init__(
        self,
        space: Space,
        points: Sequence[DataPoint],
        k_proximity: int = 4,
        metrics: Sequence[str] = ALL_METRICS,
        exclude_layers: Tuple[str, ...] = DEFAULT_EXCLUDE,
    ) -> None:
        unknown = set(metrics) - set(ALL_METRICS)
        if unknown:
            raise ValueError(f"unknown metrics: {sorted(unknown)}")
        self.space = space
        self.points = list(points)
        self.k_proximity = k_proximity
        self.metrics = tuple(metrics)
        self.exclude_layers = exclude_layers
        self.series: Dict[str, List[float]] = {name: [] for name in self.metrics}
        self.n_alive: List[int] = []

    def on_round_end(self, sim: Simulation) -> None:
        alive = sim.network.alive_nodes()
        self.n_alive.append(len(alive))
        if "homogeneity" in self.series:
            self.series["homogeneity"].append(
                homogeneity(self.space, self.points, alive)
            )
        if "proximity" in self.series:
            self.series["proximity"].append(
                proximity(self.space, sim, self.k_proximity)
            )
        if "storage" in self.series:
            self.series["storage"].append(average_storage(alive))
        if "message_cost" in self.series:
            snapshot = sim.meter.history[-1] if sim.meter.history else {}
            self.series["message_cost"].append(
                per_node_cost(snapshot, len(alive), self.exclude_layers)
            )

    # -- export ------------------------------------------------------------

    def rows(self) -> List[List[float]]:
        """One row per round: ``[round, n_alive, metric...]``."""
        n_rounds = len(self.n_alive)
        out = []
        for rnd in range(n_rounds):
            row: List[float] = [rnd, self.n_alive[rnd]]
            row.extend(self.series[name][rnd] for name in self.metrics)
            out.append(row)
        return out

    def header(self) -> List[str]:
        return ["round", "n_alive", *self.metrics]

    def write_csv(self, path: str) -> None:
        """Dump the recorded series as CSV (one row per round)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.header())
            writer.writerows(self.rows())
