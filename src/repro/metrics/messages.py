"""Communication overhead (Fig. 7b).

Per-round, per-node message cost in the paper's abstract units,
computed from the :class:`~repro.sim.transport.MessageMeter` history.
Peer-sampling traffic is excluded by default, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

DEFAULT_EXCLUDE = ("rps",)


def per_node_cost(
    round_snapshot: Dict[str, float],
    n_alive: int,
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE,
) -> float:
    """Average cost units per alive node for one round."""
    if n_alive <= 0:
        return 0.0
    total = sum(units for layer, units in round_snapshot.items() if layer not in exclude)
    return total / n_alive


def per_node_series(
    history: Sequence[Dict[str, float]],
    alive_counts: Sequence[int],
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE,
) -> List[float]:
    """Per-round per-node cost series (paper's Fig. 7b y-axis)."""
    if len(history) != len(alive_counts):
        raise ValueError(
            "history and alive_counts must cover the same rounds "
            f"({len(history)} vs {len(alive_counts)})"
        )
    return [
        per_node_cost(snapshot, alive, exclude)
        for snapshot, alive in zip(history, alive_counts)
    ]


def layer_share(
    history: Sequence[Dict[str, float]],
    layer: str,
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE,
    start: int = 0,
    end: int = None,
) -> float:
    """Fraction of total (non-excluded) traffic attributable to one
    layer over a round window — e.g. the paper's "93.6% of the
    communication overhead is caused by T-Man" for K = 8."""
    window = history[start:end]
    layer_total = sum(snapshot.get(layer, 0.0) for snapshot in window)
    grand_total = sum(
        units
        for snapshot in window
        for name, units in snapshot.items()
        if name not in exclude
    )
    if grand_total == 0:
        return 0.0
    return layer_total / grand_total
