"""Storage overhead: average stored data points per node (Fig. 7a).

Counts both guests and ghosts, per the paper.  Without failures the
expectation is ``1 + K`` (every point held once and replicated K
times); after losing half the nodes it roughly doubles, with a
transient spike while freshly reactivated ghosts are eagerly
re-replicated and not yet de-duplicated.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.network import SimNode


def node_storage(node: SimNode) -> int:
    """Guests + ghosts stored on one node."""
    state = getattr(node, "poly", None)
    if state is None:
        return 0
    return state.storage_load


def average_storage(alive_nodes: Sequence[SimNode]) -> float:
    """Mean stored points per alive node."""
    if not alive_nodes:
        return 0.0
    return sum(node_storage(node) for node in alive_nodes) / len(alive_nodes)


def total_unique_points(alive_nodes: Sequence[SimNode]) -> int:
    """Number of distinct point ids held as guest somewhere."""
    seen: set = set()
    for node in alive_nodes:
        state = getattr(node, "poly", None)
        if state is not None:
            seen.update(state.guests)
    return len(seen)
