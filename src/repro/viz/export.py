"""CSV/gnuplot-style export of experiment series."""

from __future__ import annotations

import csv
from typing import Dict, Sequence


def write_series_csv(
    path: str,
    series: Dict[str, Sequence[float]],
    index_name: str = "round",
) -> None:
    """Write a dict of equal-length series as CSV columns."""
    if not series:
        raise ValueError("nothing to export")
    lengths = {name: len(values) for name, values in series.items()}
    n_rows = min(lengths.values())
    names = list(series.keys())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_name, *names])
        for i in range(n_rows):
            writer.writerow([i, *(series[name][i] for name in names)])


def write_rows_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write generic tabular data as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
