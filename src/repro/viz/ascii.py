"""ASCII rendering of node distributions on a torus.

The paper's Figures 1, 8 and 9 are scatter plots of node positions.
Without a plotting backend we render the same information as a density
map: the torus is binned into character cells and each cell shows how
many nodes it contains, using a ramp of glyphs.  A healthy torus is a
uniform field; the post-failure T-Man overlay of Fig. 1c shows up as a
solid half and an empty half.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..types import Coord

#: Density ramp: blank for empty cells, then increasing occupancy.
DENSITY_RAMP = " .:-=+*#%@"


def density_grid(
    positions: Sequence[Coord],
    periods: Tuple[float, float],
    cols: int = 40,
    rows: int = 16,
) -> List[List[int]]:
    """Bin 2-D positions into a ``rows x cols`` occupancy grid."""
    if cols < 1 or rows < 1:
        raise ValueError("grid dimensions must be >= 1")
    width, height = periods
    grid = [[0] * cols for _ in range(rows)]
    for pos in positions:
        col = int((pos[0] % width) / width * cols)
        row = int((pos[1] % height) / height * rows)
        grid[min(row, rows - 1)][min(col, cols - 1)] += 1
    return grid


def render_density(
    positions: Sequence[Coord],
    periods: Tuple[float, float],
    cols: int = 40,
    rows: int = 16,
    title: str = "",
) -> str:
    """Render positions as an ASCII density map with a border."""
    grid = density_grid(positions, periods, cols, rows)
    peak = max((max(row) for row in grid), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * cols + "+")
    for row in grid:
        cells = []
        for count in row:
            if peak == 0 or count == 0:
                cells.append(DENSITY_RAMP[0])
            else:
                level = 1 + int((count / peak) * (len(DENSITY_RAMP) - 2))
                cells.append(DENSITY_RAMP[min(level, len(DENSITY_RAMP) - 1)])
        lines.append("|" + "".join(cells) + "|")
    lines.append("+" + "-" * cols + "+")
    return "\n".join(lines)


def occupancy_stats(
    positions: Sequence[Coord],
    periods: Tuple[float, float],
    cols: int = 40,
    rows: int = 16,
) -> dict:
    """Quantitative companion to the density map: fraction of empty
    cells and max/mean occupancy.  A reformed torus has few empty
    cells; a half-dead one has ~50% empty."""
    grid = density_grid(positions, periods, cols, rows)
    flat = [count for row in grid for count in row]
    total_cells = len(flat)
    occupied = sum(1 for c in flat if c > 0)
    return {
        "cells": total_cells,
        "empty_fraction": 1.0 - occupied / total_cells,
        "max_occupancy": max(flat),
        "mean_occupancy": sum(flat) / total_cells,
    }
