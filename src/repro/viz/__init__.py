"""Text-mode visualisation: ASCII density maps, tables, CSV export."""

from .ascii import density_grid, occupancy_stats, render_density
from .export import write_rows_csv, write_series_csv
from .tables import format_table, sample_series

__all__ = [
    "render_density",
    "density_grid",
    "occupancy_stats",
    "format_table",
    "sample_series",
    "write_series_csv",
    "write_rows_csv",
]
