"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Format a simple aligned text table."""
    str_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_store_cells(cells: Sequence[dict], title: str = "") -> str:
    """Render result-store cell records as an aligned text table.

    The viz-side reader for :class:`repro.runtime.store.ResultStore`:
    one row per grid cell with the scalar summaries the paper reports.
    """
    headers = [
        "task",
        "status",
        "seed",
        "K",
        "split",
        "n_nodes",
        "reliability",
        "reshaping",
        "secs",
    ]
    rows: List[List] = []
    for cell in cells:
        config = cell.get("config") or {}
        summary = cell.get("summary") or {}
        reliability = summary.get("reliability")
        reshaping = summary.get("reshaping_time")
        rows.append(
            [
                cell.get("task_id", "?"),
                cell.get("status", "?"),
                cell.get("seed", ""),
                config.get("replication", ""),
                config.get("split", ""),
                (config.get("width") or 0) * (config.get("height") or 0),
                "-" if reliability is None else f"{reliability:.4f}",
                "-" if reshaping is None else reshaping,
                f"{cell.get('duration_s', 0.0):.2f}",
            ]
        )
    return format_table(headers, rows, title=title)


def sample_series(series: Sequence[float], every: int) -> List[tuple]:
    """Down-sample a per-round series to ``(round, value)`` pairs for
    compact printing (always includes the final round)."""
    if every < 1:
        raise ValueError("every must be >= 1")
    pairs = [(rnd, series[rnd]) for rnd in range(0, len(series), every)]
    if series and (len(series) - 1) % every != 0:
        pairs.append((len(series) - 1, series[-1]))
    return pairs
