"""Figure 10: scalability (10a) and split-function ablation (10b).

10a sweeps the torus size (up to 51,200 nodes in the paper) for
K ∈ {2,4,8}: reshaping time grows roughly logarithmically with network
size (14.08 ± 0.11 rounds at 51,200 nodes, K = 8).

10b repeats the sweep at K = 4 with different SPLIT functions: the
diameter heuristic (PD) alone already cuts reshaping time ~2.8×
relative to SPLIT_BASIC at the largest size, and PD+MD (advanced)
~2.9×.  We additionally plot PD alone, completing the 2×2 grid of
heuristics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.stats import MeanCI, mean_ci
from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .scenario import ScenarioConfig

FIG10B_SPLITS = ("basic", "md", "pd", "advanced")


def _cell_config(
    width: int,
    height: int,
    preset: ScalePreset,
    replication: int,
    split: str,
    seed: int,
    max_rounds_after_failure: int = 61,
) -> ScenarioConfig:
    return ScenarioConfig(
        width=width,
        height=height,
        protocol="polystyrene",
        replication=replication,
        split=split,
        seed=seed,
        failure_round=preset.failure_round,
        reinjection_round=None,
        total_rounds=preset.failure_round + max_rounds_after_failure,
        metrics=("homogeneity",),
    )


def _run_sweep_grid(
    preset: ScalePreset,
    variants: List[Tuple[str, int, str]],
    repetitions: int,
    base_seed: int,
    workers: int,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> "dict":
    """Run the whole (size × variant × repetition) grid in one fan-out;
    returns ``{(n_nodes, label): (MeanCI, non_converged)}``.

    The flat grid is what makes ``workers > 1`` effective: every single
    simulation of the sweep is an independent task, so the scalability
    sweep saturates the worker pool instead of parallelising only
    within one cell.
    """
    keys: List[Tuple[int, str]] = []
    configs: List[ScenarioConfig] = []
    for width, height in preset.sweep_grids:
        n = width * height
        for label, replication, split in variants:
            for rep in range(repetitions):
                keys.append((n, label))
                configs.append(
                    _cell_config(
                        width, height, preset, replication, split,
                        base_seed + rep,
                    )
                )
    # Phase-fork mode: cells sharing a (size, K/split, seed) prefix
    # reuse one cached Phase-1 checkpoint — and because the cache is
    # persistent, the 10a K=4 column and 10b's ``advanced`` column
    # (identical configurations up to the fork) share prefixes
    # *across* figure invocations.  A queue distributes the same grid
    # over every worker that can see it.
    from ..runtime.dispatch import execute_scenarios

    results = execute_scenarios(
        configs, workers=workers, fork=fork, queue=queue, engine=engine
    )

    samples: dict = {key: [] for key in keys}
    missed: dict = {key: 0 for key in keys}
    for key, result in zip(keys, results):
        if result.reshaping_time is None:
            missed[key] += 1
        else:
            samples[key].append(float(result.reshaping_time))
    return {
        key: (mean_ci(samples[key] or [float("nan")]), missed[key])
        for key in samples
    }


@dataclass
class SweepCell:
    n_nodes: int
    label: str
    reshaping: MeanCI
    non_converged: int


@dataclass
class Fig10Result:
    cells: List[SweepCell]
    report: str


def run_fig10a(
    preset: Optional[ScalePreset] = None,
    ks: Tuple[int, ...] = (2, 4, 8),
    repetitions: int = 1,
    base_seed: int = 0,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Fig10Result:
    preset = preset or get_preset()
    variants = [(f"K={k}", k, "advanced") for k in ks]
    grid = _run_sweep_grid(
        preset, variants, repetitions, base_seed, workers, fork, queue, engine
    )
    cells: List[SweepCell] = []
    rows = []
    for width, height in preset.sweep_grids:
        n = width * height
        row: List = [n]
        for k in ks:
            ci, missed = grid[(n, f"K={k}")]
            cells.append(SweepCell(n, f"K={k}", ci, missed))
            row.append(str(ci))
        rows.append(row)
    report = format_table(
        ["#nodes", *(f"K={k}" for k in ks)],
        rows,
        title=(
            "Figure 10a — reshaping time (rounds) vs network size, "
            "SPLIT_ADVANCED (expect ~logarithmic growth)"
        ),
    )
    return Fig10Result(cells=cells, report=report)


def run_fig10b(
    preset: Optional[ScalePreset] = None,
    splits: Tuple[str, ...] = FIG10B_SPLITS,
    replication: int = 4,
    repetitions: int = 1,
    base_seed: int = 0,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Fig10Result:
    preset = preset or get_preset()
    variants = [(f"split={split}", replication, split) for split in splits]
    grid = _run_sweep_grid(
        preset, variants, repetitions, base_seed, workers, fork, queue, engine
    )
    cells: List[SweepCell] = []
    rows = []
    for width, height in preset.sweep_grids:
        n = width * height
        row: List = [n]
        for split in splits:
            ci, missed = grid[(n, f"split={split}")]
            cells.append(SweepCell(n, f"split={split}", ci, missed))
            row.append(str(ci) if not math.isnan(ci.mean) else "never")
        rows.append(row)
    report = format_table(
        ["#nodes", *(f"Split_{s.capitalize()}" for s in splits)],
        rows,
        title=(
            f"Figure 10b — reshaping time (rounds) vs network size per "
            f"SPLIT function, K={replication} (advanced should win at "
            f"scale, basic should degrade fastest)"
        ),
    )
    return Fig10Result(cells=cells, report=report)


def report(
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    part: str = "both",
    repetitions: int = 1,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    parts = []
    if part in ("a", "both"):
        parts.append(
            run_fig10a(
                preset, repetitions=repetitions, base_seed=seed,
                workers=workers, fork=fork, queue=queue, engine=engine,
            ).report
        )
    if part in ("b", "both"):
        parts.append(
            run_fig10b(
                preset, repetitions=repetitions, base_seed=seed,
                workers=workers, fork=fork, queue=queue, engine=engine,
            ).report
        )
    return "\n\n".join(parts)
