"""Figure 10: scalability (10a) and split-function ablation (10b).

10a sweeps the torus size (up to 51,200 nodes in the paper) for
K ∈ {2,4,8}: reshaping time grows roughly logarithmically with network
size (14.08 ± 0.11 rounds at 51,200 nodes, K = 8).

10b repeats the sweep at K = 4 with different SPLIT functions: the
diameter heuristic (PD) alone already cuts reshaping time ~2.8×
relative to SPLIT_BASIC at the largest size, and PD+MD (advanced)
~2.9×.  We additionally plot PD alone, completing the 2×2 grid of
heuristics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.stats import MeanCI, mean_ci
from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .scenario import ScenarioConfig, run_scenario

FIG10B_SPLITS = ("basic", "md", "pd", "advanced")


def _reshaping_for(
    width: int,
    height: int,
    preset: ScalePreset,
    replication: int,
    split: str,
    repetitions: int,
    base_seed: int,
    max_rounds_after_failure: int = 61,
) -> Tuple[MeanCI, int]:
    """Mean reshaping time over seeds for one (size, K, split) cell."""
    samples: List[float] = []
    non_converged = 0
    for rep in range(repetitions):
        config = ScenarioConfig(
            width=width,
            height=height,
            protocol="polystyrene",
            replication=replication,
            split=split,
            seed=base_seed + rep,
            failure_round=preset.failure_round,
            reinjection_round=None,
            total_rounds=preset.failure_round + max_rounds_after_failure,
            metrics=("homogeneity",),
        )
        result = run_scenario(config)
        if result.reshaping_time is None:
            non_converged += 1
        else:
            samples.append(float(result.reshaping_time))
    return mean_ci(samples or [float("nan")]), non_converged


@dataclass
class SweepCell:
    n_nodes: int
    label: str
    reshaping: MeanCI
    non_converged: int


@dataclass
class Fig10Result:
    cells: List[SweepCell]
    report: str


def run_fig10a(
    preset: Optional[ScalePreset] = None,
    ks: Tuple[int, ...] = (2, 4, 8),
    repetitions: int = 1,
    base_seed: int = 0,
) -> Fig10Result:
    preset = preset or get_preset()
    cells: List[SweepCell] = []
    rows = []
    for width, height in preset.sweep_grids:
        n = width * height
        row: List = [n]
        for k in ks:
            ci, missed = _reshaping_for(
                width, height, preset, k, "advanced", repetitions, base_seed
            )
            cells.append(SweepCell(n, f"K={k}", ci, missed))
            row.append(str(ci))
        rows.append(row)
    report = format_table(
        ["#nodes", *(f"K={k}" for k in ks)],
        rows,
        title=(
            "Figure 10a — reshaping time (rounds) vs network size, "
            "SPLIT_ADVANCED (expect ~logarithmic growth)"
        ),
    )
    return Fig10Result(cells=cells, report=report)


def run_fig10b(
    preset: Optional[ScalePreset] = None,
    splits: Tuple[str, ...] = FIG10B_SPLITS,
    replication: int = 4,
    repetitions: int = 1,
    base_seed: int = 0,
) -> Fig10Result:
    preset = preset or get_preset()
    cells: List[SweepCell] = []
    rows = []
    for width, height in preset.sweep_grids:
        n = width * height
        row: List = [n]
        for split in splits:
            ci, missed = _reshaping_for(
                width, height, preset, replication, split, repetitions, base_seed
            )
            cells.append(SweepCell(n, f"split={split}", ci, missed))
            row.append(str(ci) if not math.isnan(ci.mean) else "never")
        rows.append(row)
    report = format_table(
        ["#nodes", *(f"Split_{s.capitalize()}" for s in splits)],
        rows,
        title=(
            f"Figure 10b — reshaping time (rounds) vs network size per "
            f"SPLIT function, K={replication} (advanced should win at "
            f"scale, basic should degrade fastest)"
        ),
    )
    return Fig10Result(cells=cells, report=report)


def report(
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    part: str = "both",
    repetitions: int = 1,
) -> str:
    parts = []
    if part in ("a", "both"):
        parts.append(
            run_fig10a(preset, repetitions=repetitions, base_seed=seed).report
        )
    if part in ("b", "both"):
        parts.append(
            run_fig10b(preset, repetitions=repetitions, base_seed=seed).report
        )
    return "\n\n".join(parts)
