"""The paper's evaluation scenario (Sec. IV-A), as a reusable runner.

Three phases on a logical torus with one data point per node:

* **Phase 1 — convergence**: T-Man organises the overlay while
  Polystyrene replicates points and watches for failures.
* **Phase 2 — catastrophic failure**: at ``failure_round``, every node
  in one half of the torus (by *original* position) crashes at once.
* **Phase 3 — reinjection**: at ``reinjection_round``, fresh point-less
  nodes are dropped uniformly on a grid parallel to the original one.

The same runner executes the Polystyrene configuration and the plain
T-Man baseline (``protocol="tman"``), and powers every figure and table
of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.config import PolystyreneConfig
from ..core.points import PointFactory
from ..core.protocol import PolystyreneLayer, StaticHolderLayer
from ..errors import ConfigurationError
from ..gossip.rps import PeerSamplingLayer
from ..gossip.tman import TManLayer
from ..gossip.vicinity import VicinityLayer
from ..metrics.collector import ALL_METRICS, MetricsRecorder
from ..metrics.homogeneity import holder_index, homogeneity, surviving_fraction
from ..metrics.proximity import proximity
from ..metrics.reshaping import reference_homogeneity, reshaping_time
from ..obs import profiling as obs_profiling
from ..obs import series as obs_series
from ..shapes.grid import TorusGrid
from ..sim.engine import Simulation
from ..sim.failures import half_space_failure
from ..sim.network import (
    DelayedFailureDetector,
    Network,
    PerfectFailureDetector,
)
from ..sim.observers import PositionSnapshotter
from ..sim.reinjection import reinjection
from ..types import Coord, DataPoint

PROTOCOLS = ("polystyrene", "tman")
TOPOLOGIES = ("tman", "vicinity")
ENGINES = ("event", "batch")

#: Configuration fields that influence the simulation only at or after
#: ``failure_round``: the failure event's shape, the reinjection phase,
#: the run length, and the failure-detection delay (no node is dead
#: before the failure, so the detector is never consulted earlier).
#: Everything else — including ``split``, which engages whenever a
#: migration pool transiently holds several points during Phase 1 —
#: shapes the pre-failure trajectory and therefore belongs to the
#: *prefix*.  :func:`prefix_scenario` and
#: :func:`repro.runtime.forksweep.plan_fork_sweep` build on this split:
#: two configurations that agree on every non-divergent field evolve
#: bit-identically up to ``failure_round`` and may share a checkpoint.
DIVERGENT_FIELDS = (
    "failure_fraction",
    "reinjection_round",
    "reinjection_count",
    "total_rounds",
    "detector_delay",
    # The retention policy only ever observes dead nodes, and nobody is
    # dead before the failure round.  ``engine`` is deliberately NOT
    # here: it shapes every round, so it belongs to the prefix (a batch
    # cell can only fork from a batch prefix).
    "retention_rounds",
)


@dataclass
class ScenarioConfig:
    """Full parameterisation of one scenario run.

    Defaults follow the paper (Sec. IV-A) at the reduced scale; use
    :meth:`from_preset` to bind the dimensions of a
    :class:`~repro.experiments.presets.ScalePreset`.
    """

    # -- shape ---------------------------------------------------------
    width: int = 32
    height: int = 16
    step: float = 1.0
    # -- execution engine ------------------------------------------------
    #: ``"event"`` — the round-by-round per-node engine
    #: (:class:`repro.sim.engine.Simulation`, semantics version 1);
    #: ``"batch"`` — the batch-synchronous vectorised engine
    #: (:class:`repro.sim.batch.BatchSimulation`, semantics version 2).
    #: Same scenario, statistically equivalent metrics, different
    #: trajectories — see README "Execution engines".
    engine: str = "event"
    #: Kernel backend for the batch engine's hot kernels: ``None``
    #: defers to the ``REPRO_KERNEL_BACKEND`` environment variable
    #: (default ``numpy``); ``"numba"`` requests the optional compiled
    #: kernels and silently falls back to numpy when numba is not
    #: installed.  A pure execution knob — results are byte-identical
    #: across backends, so it is excluded from config hashes.
    kernel_backend: Optional[str] = None
    # -- protocol under test --------------------------------------------
    protocol: str = "polystyrene"
    #: Which topology construction layer Polystyrene plugs into —
    #: Polystyrene is an add-on over *any* such protocol (Sec. II-C).
    topology: str = "tman"
    replication: int = 4
    split: str = "advanced"
    projection: str = "medoid"
    backup_placement: str = "random"
    incremental_backup: bool = True
    migration_psi: int = 5
    # -- phases ----------------------------------------------------------
    failure_round: Optional[int] = 20
    failure_fraction: float = 0.5
    reinjection_round: Optional[int] = 80
    reinjection_count: Optional[int] = None
    total_rounds: int = 140
    # -- substrates --------------------------------------------------------
    tman_message_size: int = 20
    tman_psi: int = 5
    tman_view_cap: int = 100
    tman_bootstrap: int = 10
    rps_view_size: int = 20
    rps_shuffle_length: int = 10
    detector_delay: int = 0
    #: Forget crashed nodes after this many rounds (``None`` disables):
    #: bounds long-churn memory at the peak population.  Must exceed
    #: ``detector_delay`` by at least 2 so all ghost recoveries have
    #: fired before their origin is forgotten.
    retention_rounds: Optional[int] = None
    # -- instrumentation ----------------------------------------------------
    seed: int = 0
    metrics: Tuple[str, ...] = ALL_METRICS
    snapshot_rounds: Tuple[int, ...] = ()
    k_proximity: int = 4

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"protocol must be one of {PROTOCOLS}, got {self.protocol!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.kernel_backend is not None:
            from ..sim.batch import backend as kernel_backend_mod

            if self.kernel_backend not in kernel_backend_mod.KNOWN_BACKENDS:
                raise ConfigurationError(
                    "kernel_backend must be one of "
                    f"{kernel_backend_mod.KNOWN_BACKENDS}, "
                    f"got {self.kernel_backend!r}"
                )
        if self.retention_rounds is not None and (
            self.retention_rounds < self.detector_delay + 2
        ):
            raise ConfigurationError(
                f"retention_rounds={self.retention_rounds} would forget "
                "crashed nodes before every ghost recovery has fired; "
                f"use at least detector_delay + 2 = {self.detector_delay + 2}"
            )
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(
                f"the torus needs width >= 1 and height >= 1, got "
                f"{self.width}x{self.height}"
            )
        if self.total_rounds < 1:
            raise ConfigurationError(
                f"total_rounds must be >= 1, got {self.total_rounds}"
            )
        if not 0.0 <= self.failure_fraction <= 1.0:
            raise ConfigurationError("failure_fraction must be in [0, 1]")
        if self.failure_round is not None:
            if self.failure_round < 0:
                raise ConfigurationError(
                    f"failure_round must be >= 0, got {self.failure_round} "
                    "(use failure_round=None for a run without a failure)"
                )
            if self.failure_round >= self.total_rounds:
                raise ConfigurationError("failure_round must precede total_rounds")
            if (
                self.failure_fraction > 0
                and self.failed_node_count() >= self.n_nodes
            ):
                raise ConfigurationError(
                    f"failure_fraction={self.failure_fraction} would crash "
                    f"all {self.n_nodes} nodes at once; every metric is "
                    "undefined on an empty network.  Use a fraction below "
                    f"{(self.width - 1) / self.width:.3f} on this torus, or "
                    "the mass_failure churn schedule for total-loss studies."
                )
        if self.reinjection_round is not None:
            if self.failure_round is not None and (
                self.reinjection_round <= self.failure_round
            ):
                raise ConfigurationError("reinjection must come after the failure")
            if self.reinjection_round >= self.total_rounds:
                raise ConfigurationError(
                    f"reinjection_round={self.reinjection_round} never fires: "
                    f"the run ends at round {self.total_rounds}.  Raise "
                    "total_rounds or set reinjection_round=None."
                )

    @classmethod
    def from_preset(cls, preset, **overrides) -> "ScenarioConfig":
        """Bind the grid size and phase rounds of a scale preset."""
        base = dict(
            width=preset.width,
            height=preset.height,
            failure_round=preset.failure_round,
            reinjection_round=preset.reinjection_round,
            total_rounds=preset.total_rounds,
        )
        base.update(overrides)
        return cls(**base)

    # -- derived quantities --------------------------------------------------

    @property
    def grid(self) -> TorusGrid:
        return TorusGrid(self.width, self.height, self.step)

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    def failure_cut(self) -> float:
        """x-coordinate threshold of the half-space failure."""
        return self.width * self.step * self.failure_fraction

    def failed_node_count(self) -> int:
        """How many original nodes the failure event will crash."""
        if self.failure_round is None:
            return 0
        cut = self.failure_cut()
        cols = sum(1 for x in range(self.width) if x * self.step < cut)
        return cols * self.height


@dataclass
class ScenarioResult:
    """Everything measured in one scenario run."""

    config: ScenarioConfig
    series: Dict[str, List[float]]
    n_alive: List[int]
    #: Fraction of data points surviving the failure (Table II
    #: "reliability"), measured right after the crash event.
    reliability: Optional[float]
    #: Rounds to re-converge under the post-failure reference
    #: homogeneity (Table II "reshaping time"); None if never reached.
    reshaping_time: Optional[int]
    h_ref_initial: float
    h_ref_after_failure: Optional[float]
    snapshots: Dict[int, List[Coord]]
    points: List[DataPoint]
    message_history: List[Dict[str, float]]
    rps_fallbacks: int

    def final(self, metric: str) -> float:
        return self.series[metric][-1]

    def at_round(self, metric: str, rnd: int) -> float:
        return self.series[metric][rnd]


class ReliabilityProbe:
    """Scheduled right after the failure event in the same round, so it
    sees the post-crash network before any recovery runs.  A picklable
    class (not a closure) so checkpoints taken before the failure round
    can be written to disk."""

    def __init__(self, points: List[DataPoint]) -> None:
        self.points = points
        self.samples: List[float] = []

    def __call__(self, sim: Simulation) -> None:
        self.samples.append(
            surviving_fraction(self.points, sim.network.alive_nodes())
        )


def _reinjection_positions(config: ScenarioConfig, count: int) -> List[Coord]:
    """``count`` positions spread uniformly on a grid parallel to the
    original one (offset by half a step on both axes), chosen with an
    even index stride so any count yields a near-uniform covering."""
    parallel = config.grid.parallel(0.5).generate()
    total = len(parallel)
    count = min(count, total)
    if count <= 0:
        return []
    stride = total / count
    return [parallel[int(i * stride)] for i in range(count)]


class SeriesHealthProbe:
    """Observer computing the domain health probes — homogeneity,
    proximity, holder multiplicity — every
    :func:`repro.obs.series.probe_every` rounds and staging them for
    that round's series record (:func:`repro.obs.series.note_probes`).

    Pure reads, no RNG draws, observers are outside ``state_digest`` —
    trajectories and golden digests are unchanged.  Attached by
    :func:`build_simulation` only when series emission is enabled, so
    unobserved runs pay nothing."""

    def __init__(
        self, space, points: List[DataPoint], k_proximity: int = 4
    ) -> None:
        self.space = space
        self.points = points
        self.k_proximity = k_proximity

    def on_round_end(self, sim) -> None:
        if not obs_series.ENABLED or sim.round % obs_series.probe_every():
            return
        alive = sim.network.alive_nodes()
        if not alive or not self.points:
            return
        probes = {
            "homogeneity": float(
                homogeneity(self.space, self.points, alive)
            ),
            "proximity": float(
                proximity(self.space, sim, self.k_proximity)
            ),
        }
        holders = holder_index(alive)
        if holders:
            probes["holder_multiplicity"] = sum(
                len(holding) for holding in holders.values()
            ) / len(holders)
        obs_series.note_probes(probes)


def build_simulation(
    config: ScenarioConfig,
) -> Tuple[Simulation, MetricsRecorder, PositionSnapshotter, List[DataPoint]]:
    """Construct (but do not run) the full simulation stack for the
    configured execution engine."""
    grid = config.grid
    space = grid.space()
    factory = PointFactory()
    points = factory.create_many(grid.generate())

    detector = (
        DelayedFailureDetector(config.detector_delay)
        if config.detector_delay > 0
        else PerfectFailureDetector()
    )
    network = Network(detector)
    for point in points:
        network.add_node(point.coord, point)

    poly_config = (
        PolystyreneConfig(
            replication=config.replication,
            psi=config.migration_psi,
            split=config.split,
            projection=config.projection,
            backup_placement=config.backup_placement,
            incremental_backup=config.incremental_backup,
        )
        if config.protocol == "polystyrene"
        else None
    )

    # One construction path for both engines: only the classes differ,
    # so a new constructor knob cannot silently reach one engine only.
    if config.engine == "batch":
        from ..sim.batch import (
            BatchPeerSampling,
            BatchPolystyrene,
            BatchSimulation,
            BatchTMan,
            BatchVicinity,
        )
        from ..sim.batch import backend as kernel_backend_mod

        if config.kernel_backend is not None:
            # Explicit config beats the environment; an unavailable
            # optional backend silently resolves to numpy.
            kernel_backend_mod.set_active(config.kernel_backend)

        rps_cls, tman_cls, vicinity_cls, poly_cls, sim_cls = (
            BatchPeerSampling,
            BatchTMan,
            BatchVicinity,
            BatchPolystyrene,
            BatchSimulation,
        )
    else:
        rps_cls, tman_cls, vicinity_cls, poly_cls, sim_cls = (
            PeerSamplingLayer,
            TManLayer,
            VicinityLayer,
            PolystyreneLayer,
            Simulation,
        )
    rps = rps_cls(config.rps_view_size, config.rps_shuffle_length)
    if config.topology == "vicinity":
        tman: object = vicinity_cls(
            space,
            rps,
            message_size=config.tman_message_size,
            bootstrap_size=config.tman_bootstrap,
        )
    else:
        tman = tman_cls(
            space,
            rps,
            message_size=config.tman_message_size,
            psi=config.tman_psi,
            view_cap=config.tman_view_cap,
            bootstrap_size=config.tman_bootstrap,
        )
    if poly_config is not None:
        top: object = poly_cls(space, poly_config, rps, tman)
    else:
        top = StaticHolderLayer()

    recorder = MetricsRecorder(
        space, points, k_proximity=config.k_proximity, metrics=config.metrics
    )
    snapshotter = PositionSnapshotter(config.snapshot_rounds)
    observers: List[object] = [recorder, snapshotter]
    if obs_profiling.ACTIVE:
        observers.append(obs_profiling.ArraySampler())
    if obs_series.ENABLED:
        observers.append(
            SeriesHealthProbe(space, points, k_proximity=config.k_proximity)
        )
    sim = sim_cls(
        space,
        network,
        layers=[rps, tman, top],
        seed=config.seed,
        observers=observers,
    )
    if config.retention_rounds is not None:
        sim.retention_rounds = config.retention_rounds
    sim.init_all_nodes()
    return sim, recorder, snapshotter, points


@dataclass
class ScenarioHandles:
    """The observers a scenario summary needs, kept reachable *from the
    simulation object itself* (``sim.scenario_handles``) so that a
    checkpoint deep-copy carries them along: after
    :func:`repro.runtime.checkpoint.restore` the copied handles still
    point at the copied simulation's recorder/probe (one shared object
    graph), and the reliability sample stays reachable even after the
    failure event has fired and been popped from the schedule."""

    config: ScenarioConfig
    recorder: MetricsRecorder
    snapshotter: PositionSnapshotter
    points: List[DataPoint]
    probe: ReliabilityProbe


def prepare_scenario(
    config: ScenarioConfig,
) -> Tuple[Simulation, MetricsRecorder, PositionSnapshotter, List[DataPoint], ReliabilityProbe]:
    """Build the simulation and schedule all three phases, but do not
    run.  The seam the runtime layer uses to pause/checkpoint/resume a
    scenario mid-flight: step the returned simulation any way you like,
    then hand everything to :func:`summarize_scenario` — or, for a
    simulation that went through checkpoint restore (which deep-copies
    and therefore severs the returned handles), just call
    :func:`finish_scenario` on the restored simulation."""
    sim, recorder, snapshotter, points = build_simulation(config)
    probe = ReliabilityProbe(points)
    _schedule_phases(sim, config, probe)
    sim.scenario_handles = ScenarioHandles(
        config, recorder, snapshotter, points, probe
    )
    return sim, recorder, snapshotter, points, probe


def _schedule_phases(
    sim: Simulation, config: ScenarioConfig, probe: ReliabilityProbe
) -> None:
    """Register the failure and reinjection events of ``config``.

    Insertion order (failure, probe, reinjection) fixes the intra-round
    firing order, so scheduling at preparation time and scheduling at a
    fork point are indistinguishable."""
    if config.failure_round is not None and config.failure_fraction > 0:
        sim.schedule(
            config.failure_round, half_space_failure(0, config.failure_cut())
        )
        sim.schedule(config.failure_round, probe)

    if config.reinjection_round is not None:
        count = config.reinjection_count
        if count is None:
            count = config.failed_node_count()
        positions = _reinjection_positions(config, count)
        if positions:
            sim.schedule(config.reinjection_round, reinjection(positions))


def finish_scenario(sim: Simulation) -> ScenarioResult:
    """Run a prepared (possibly checkpoint-restored) scenario simulation
    to its configured end and summarise it.

    Works on any simulation that came out of :func:`prepare_scenario`,
    including one round-tripped through
    :func:`repro.runtime.checkpoint.save`/``load``/``restore`` — the
    handles travel inside the checkpoint, so the result is identical to
    an uninterrupted :func:`run_scenario`."""
    handles: Optional[ScenarioHandles] = getattr(sim, "scenario_handles", None)
    if handles is None:
        raise ConfigurationError(
            "simulation has no scenario handles; build it with "
            "prepare_scenario(), not build_simulation()"
        )
    remaining = handles.config.total_rounds - sim.round
    if remaining > 0:
        sim.run(remaining)
    return summarize_scenario(
        handles.config,
        sim,
        handles.recorder,
        handles.snapshotter,
        handles.points,
        handles.probe,
    )


def summarize_scenario(
    config: ScenarioConfig,
    sim: Simulation,
    recorder: MetricsRecorder,
    snapshotter: PositionSnapshotter,
    points: List[DataPoint],
    probe: ReliabilityProbe,
) -> ScenarioResult:
    """Package a completed (fully-run) scenario simulation."""
    grid = config.grid
    h_ref_initial = reference_homogeneity(grid.area, config.n_nodes)
    h_ref_after: Optional[float] = None
    reshape: Optional[int] = None
    if config.failure_round is not None and config.failure_fraction > 0:
        survivors = config.n_nodes - config.failed_node_count()
        if survivors > 0:
            h_ref_after = reference_homogeneity(grid.area, survivors)
            if "homogeneity" in recorder.series:
                # Only the window before reinjection counts: fresh nodes
                # covering the hole is not *reshaping* by the survivors.
                series = recorder.series["homogeneity"]
                if config.reinjection_round is not None:
                    series = series[: config.reinjection_round]
                reshape = reshaping_time(
                    series, config.failure_round, h_ref_after
                )

    rps_layer = sim.layers[0]
    return ScenarioResult(
        config=config,
        series=recorder.series,
        n_alive=recorder.n_alive,
        reliability=probe.samples[0] if probe.samples else None,
        reshaping_time=reshape,
        h_ref_initial=h_ref_initial,
        h_ref_after_failure=h_ref_after,
        snapshots=snapshotter.snapshots,
        points=points,
        message_history=sim.meter.history,
        rps_fallbacks=getattr(rps_layer, "bootstrap_fallbacks", 0),
    )


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, schedule the phases, run to completion, and summarise."""
    sim, recorder, snapshotter, points, probe = prepare_scenario(config)
    sim.run(config.total_rounds - sim.round)
    return summarize_scenario(config, sim, recorder, snapshotter, points, probe)


# -- prefix/divergence split (phase-fork sweeps) ----------------------------


def fork_round(config: ScenarioConfig) -> Optional[int]:
    """The round at which ``config`` diverges from its shared prefix —
    the failure round — or ``None`` when the scenario has no usable fork
    point (no failure, or a failure at round 0, which leaves no Phase 1
    to share)."""
    if config.failure_round is None or config.failure_round <= 0:
        return None
    return config.failure_round


def prefix_scenario(config: ScenarioConfig) -> Optional[ScenarioConfig]:
    """The canonical pre-failure projection of ``config``.

    Every :data:`DIVERGENT_FIELDS` entry is neutralised (no failure
    event, no reinjection, zero detector delay, minimal run length), so
    two configurations agree on their prefix exactly when their
    simulations are bit-identical up to :func:`fork_round`.  The prefix
    is itself a valid :class:`ScenarioConfig`: preparing it schedules
    *no* events, and running it for ``failure_round`` rounds produces
    precisely the state an uninterrupted run of ``config`` has when its
    failure is about to fire.  Returns ``None`` for unforkable configs.
    """
    rnd = fork_round(config)
    if rnd is None:
        return None
    return replace(
        config,
        failure_fraction=0.0,
        reinjection_round=None,
        reinjection_count=None,
        total_rounds=rnd + 1,
        detector_delay=0,
        retention_rounds=None,
    )


def run_prefix(config: ScenarioConfig) -> Simulation:
    """Simulate the shared prefix of ``config`` up to its fork round.

    The returned simulation carries its :class:`ScenarioHandles`, so a
    checkpoint of it can later be turned into any divergent continuation
    via :func:`apply_divergence` + :func:`finish_scenario`."""
    prefix = prefix_scenario(config)
    if prefix is None:
        raise ConfigurationError(
            "scenario has no fork point (failure_round is None or 0); "
            "run it cold with run_scenario()"
        )
    sim, *_ = prepare_scenario(prefix)
    sim.run(fork_round(config))
    return sim


def apply_divergence(sim: Simulation, config: ScenarioConfig) -> Simulation:
    """Turn a restored prefix simulation into ``config``'s continuation.

    ``sim`` must be (a restore of a checkpoint of) the prefix of
    ``config`` paused exactly at the fork round.  The divergent fields
    are re-applied the same way :func:`prepare_scenario` would have:
    the failure detector is swapped (it was never consulted — nobody is
    dead before the fork), the scenario handles are re-pointed at the
    full configuration, and the phase events are scheduled in the same
    intra-round order.  ``finish_scenario(sim)`` afterwards yields a
    result byte-identical to ``run_scenario(config)``."""
    handles: Optional[ScenarioHandles] = getattr(sim, "scenario_handles", None)
    if handles is None:
        raise ConfigurationError(
            "simulation has no scenario handles; prefix checkpoints must "
            "come from run_prefix()/prepare_scenario()"
        )
    expected = fork_round(config)
    if expected is None:
        raise ConfigurationError(
            "config has no fork point; it cannot continue a prefix"
        )
    if sim.round != expected:
        raise ConfigurationError(
            f"prefix is paused at round {sim.round} but the configuration "
            f"forks at round {expected}"
        )
    if prefix_scenario(config) != prefix_scenario(handles.config):
        raise ConfigurationError(
            "prefix/configuration mismatch: the checkpointed prefix was "
            "simulated under different pre-failure parameters"
        )
    sim.network.detector = (
        DelayedFailureDetector(config.detector_delay)
        if config.detector_delay > 0
        else PerfectFailureDetector()
    )
    sim.retention_rounds = config.retention_rounds
    handles.config = config
    _schedule_phases(sim, config, handles.probe)
    return sim
