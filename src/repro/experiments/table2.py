"""Table II: reshaping time and reliability versus K.

The paper averages 25 repetitions per K on the 80×40 torus and reports
(mean ± 95% CI): K=2 → 5.00 rounds / 87.73% reliability; K=4 → 6.96 /
96.88%; K=8 → 9.08 / 99.80%.  Reliability tracks the analytical bound
``1 - 0.5^(K+1)`` (87.5% / 96.9% / 99.8%); reshaping slows as K grows
because more redundant copies must be de-duplicated.

Only the failure phase matters here, so runs stop shortly after the
crash and skip the metrics the table does not need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.stats import MeanCI, mean_ci
from ..core.backup import survival_probability
from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .scenario import ScenarioConfig

DEFAULT_KS = (2, 4, 8)


@dataclass
class Table2Row:
    replication: int
    reshaping: MeanCI
    reliability: MeanCI
    expected_reliability: float
    #: Number of runs (out of ``n``) that never re-converged; these are
    #: excluded from the reshaping mean, mirroring the paper's protocol.
    non_converged: int


@dataclass
class Table2Result:
    rows: List[Table2Row]
    report: str


def run_table2(
    preset: Optional[ScalePreset] = None,
    ks: Tuple[int, ...] = DEFAULT_KS,
    repetitions: Optional[int] = None,
    base_seed: int = 0,
    split: str = "advanced",
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Table2Result:
    preset = preset or get_preset()
    if repetitions is None:
        repetitions = preset.repetitions

    # One flat (K × repetition) grid so ``workers > 1`` parallelises the
    # whole table, not just one K at a time.
    keys: List[int] = []
    configs: List[ScenarioConfig] = []
    for k in ks:
        for rep in range(repetitions):
            keys.append(k)
            configs.append(
                ScenarioConfig.from_preset(
                    preset,
                    protocol="polystyrene",
                    replication=k,
                    split=split,
                    seed=base_seed + rep,
                    reinjection_round=None,
                    total_rounds=preset.failure_round + 41,
                    metrics=("homogeneity",),
                )
            )
    from ..runtime.dispatch import execute_scenarios

    results = execute_scenarios(
        configs, workers=workers, fork=fork, queue=queue, engine=engine
    )

    rows: List[Table2Row] = []
    for k in ks:
        reshaping_samples: List[float] = []
        reliability_samples: List[float] = []
        non_converged = 0
        for key, result in zip(keys, results):
            if key != k:
                continue
            reliability_samples.append(result.reliability * 100.0)
            if result.reshaping_time is None:
                non_converged += 1
            else:
                reshaping_samples.append(float(result.reshaping_time))
        rows.append(
            Table2Row(
                replication=k,
                reshaping=mean_ci(reshaping_samples or [float("nan")]),
                reliability=mean_ci(reliability_samples),
                expected_reliability=survival_probability(k, 0.5) * 100.0,
                non_converged=non_converged,
            )
        )

    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.replication,
                str(row.reshaping),
                str(row.reliability),
                f"{row.expected_reliability:.2f}",
                row.non_converged,
            ]
        )
    report = format_table(
        [
            "K",
            "Reshaping time (rounds)",
            "Reliability (%)",
            "1-0.5^(K+1) (%)",
            "non-converged runs",
        ],
        table_rows,
        title=(
            f"Table II — reshaping time and reliability "
            f"({preset.width}x{preset.height} torus, {repetitions} runs, "
            f"95% CI)"
        ),
    )
    return Table2Result(rows=rows, report=report)


def report(
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    repetitions: Optional[int] = None,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    return run_table2(
        preset, base_seed=seed, repetitions=repetitions, workers=workers,
        fork=fork, queue=queue, engine=engine,
    ).report
