"""Shared scenario runs for the figure modules.

Figures 6a, 6b, 7a, 7b, 8 and 9 all read from the *same* four runs
(Polystyrene with K ∈ {2,4,8} plus the T-Man baseline).  This module
runs them once per (preset, seed) and caches the results so each figure
module — and each benchmark — can render its view without re-simulating.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .presets import ScalePreset, get_preset
from .scenario import ScenarioConfig, ScenarioResult

DEFAULT_KS = (2, 4, 8)

_CACHE: Dict[tuple, Dict[str, ScenarioResult]] = {}


def snapshot_rounds_for(preset: ScalePreset) -> Tuple[int, ...]:
    """The rounds the paper photographs: initial, converged, repair
    started (failure+2), repair completed (failure+8), post-reinjection
    (+25), and final."""
    fr = preset.failure_round
    rr = preset.reinjection_round
    return (
        0,
        fr - 1,
        fr + 2,
        fr + 8,
        min(rr + 25, preset.total_rounds - 1),
        preset.total_rounds - 1,
    )


def scenario_name(protocol: str, replication: int = 0) -> str:
    if protocol == "tman":
        return "TMan"
    return f"Polystyrene_K{replication}"


def run_comparison(
    preset: Optional[ScalePreset] = None,
    ks: Tuple[int, ...] = DEFAULT_KS,
    include_tman: bool = True,
    seed: int = 0,
    use_cache: bool = True,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Dict[str, ScenarioResult]:
    """Run (or fetch) the full evaluation scenario for every
    configuration; returns ``{name: ScenarioResult}``.

    The configurations are independent simulations, so ``workers > 1``
    fans them out across processes (identical per-config results —
    ``workers`` is deliberately *not* part of the cache key).
    ``fork=True`` additionally checkpoints every configuration's
    Phase 1 in the persistent
    :class:`~repro.runtime.forksweep.CheckpointCache`: the four runs
    here share no prefix with each other (K and the protocol shape
    Phase 1), but a *second* figure rendered later — even in a fresh
    process — restores them instead of re-converging.  ``queue``
    publishes the runs to a shared cluster work queue and drains it
    cooperatively (``repro.runtime.cluster``).  None of the three knobs
    changes a result, and none is part of the in-process cache key."""
    preset = preset or get_preset()
    key = (preset.name, tuple(ks), include_tman, seed, engine or "event")
    if use_cache and key in _CACHE:
        return _CACHE[key]

    snapshots = snapshot_rounds_for(preset)
    names = [scenario_name("polystyrene", k) for k in ks]
    configs = [
        ScenarioConfig.from_preset(
            preset,
            protocol="polystyrene",
            replication=k,
            seed=seed,
            snapshot_rounds=snapshots,
        )
        for k in ks
    ]
    if include_tman:
        names.append(scenario_name("tman"))
        configs.append(
            ScenarioConfig.from_preset(
                preset, protocol="tman", seed=seed, snapshot_rounds=snapshots
            )
        )

    from ..runtime.dispatch import execute_scenarios

    runs = execute_scenarios(
        configs, workers=workers, fork=fork, queue=queue, engine=engine
    )
    results: Dict[str, ScenarioResult] = dict(zip(names, runs))

    if use_cache:
        _CACHE[key] = results
    return results


def clear_cache() -> None:
    """Drop all cached suite runs (mainly for tests)."""
    _CACHE.clear()
