"""Figure 6: homogeneity (6a) and proximity (6b) over the full scenario.

The paper's headline comparison: Polystyrene (K ∈ {2,4,8}) re-converges
below the reference homogeneity within ~10 rounds of losing half the
torus and returns to near-zero homogeneity after reinjection, while
T-Man's homogeneity stays pinned high after the failure and around the
parallel-grid offset after reinjection.  Proximity shows Polystyrene
pays almost nothing for this (neighbourhoods stay near-optimal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .scenario import ScenarioResult
from .suite import DEFAULT_KS, run_comparison


@dataclass
class Fig6Result:
    results: Dict[str, ScenarioResult]
    h_ref_after_failure: float
    report_homogeneity: str
    report_proximity: str


def _series_table(
    results: Dict[str, ScenarioResult],
    metric: str,
    title: str,
    every: int,
) -> str:
    names = list(results)
    any_result = results[names[0]]
    n_rounds = len(any_result.series[metric])
    rows = []
    for rnd in range(0, n_rounds, every):
        rows.append([rnd, *(results[name].series[metric][rnd] for name in names)])
    if (n_rounds - 1) % every != 0:
        rnd = n_rounds - 1
        rows.append([rnd, *(results[name].series[metric][rnd] for name in names)])
    return format_table(["round", *names], rows, title=title)


def run_fig6(
    preset: Optional[ScalePreset] = None,
    ks: Tuple[int, ...] = DEFAULT_KS,
    seed: int = 0,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Fig6Result:
    preset = preset or get_preset()
    results = run_comparison(
        preset, ks=ks, seed=seed, workers=workers, fork=fork, queue=queue,
        engine=engine,
    )
    every = max(1, preset.total_rounds // 20)

    hom_table = _series_table(
        results,
        "homogeneity",
        f"Figure 6a — global homogeneity, lower is better "
        f"(failure @ r={preset.failure_round}, reinjection @ "
        f"r={preset.reinjection_round})",
        every,
    )
    poly_any = next(r for r in results.values() if r.h_ref_after_failure)
    h_ref = poly_any.h_ref_after_failure
    summary_rows = []
    for name, result in results.items():
        summary_rows.append(
            [
                name,
                result.reshaping_time if result.reshaping_time is not None else "never",
                result.series["homogeneity"][-1],
            ]
        )
    hom_summary = format_table(
        ["configuration", f"rounds to H<= {h_ref:.3f}", "final homogeneity"],
        summary_rows,
        title="Reshaping summary",
    )
    prox_table = _series_table(
        results,
        "proximity",
        "Figure 6b — proximity of neighbourhoods, lower is better",
        every,
    )
    return Fig6Result(
        results=results,
        h_ref_after_failure=h_ref,
        report_homogeneity=hom_table + "\n\n" + hom_summary,
        report_proximity=prox_table,
    )


def report(
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    part: str = "both",
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    fig = run_fig6(
        preset, seed=seed, workers=workers, fork=fork, queue=queue, engine=engine
    )
    if part == "a":
        return fig.report_homogeneity
    if part == "b":
        return fig.report_proximity
    return fig.report_homogeneity + "\n\n" + fig.report_proximity
