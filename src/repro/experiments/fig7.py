"""Figure 7: memory overhead (7a) and communication cost (7b).

7a — average stored data points per node (guests + ghosts): ~(1+K)
while stable, about double after losing half the nodes, with a spike at
the failure round while eagerly re-replicated ghosts await
de-duplication by migration.

7b — message cost per node per round (paper units, peer sampling
excluded): T-Man dominates the budget (93.6% for K = 8 in the paper);
Polystyrene adds only migration traffic plus incremental backup deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..metrics.messages import layer_share
from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .scenario import ScenarioResult
from .suite import DEFAULT_KS, run_comparison
from .fig6 import _series_table


@dataclass
class Fig7Result:
    results: Dict[str, ScenarioResult]
    tman_share: Dict[str, float]
    report_memory: str
    report_messages: str


def run_fig7(
    preset: Optional[ScalePreset] = None,
    ks: Tuple[int, ...] = DEFAULT_KS,
    seed: int = 0,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Fig7Result:
    preset = preset or get_preset()
    results = run_comparison(
        preset, ks=ks, seed=seed, workers=workers, fork=fork, queue=queue,
        engine=engine,
    )
    every = max(1, preset.total_rounds // 20)

    memory_table = _series_table(
        results,
        "storage",
        "Figure 7a — average #(data points) per node (guests + ghosts)",
        every,
    )
    message_table = _series_table(
        results,
        "message_cost",
        "Figure 7b — average message cost per node per round "
        "(1 ID = 1 coordinate = 1 unit; peer sampling excluded)",
        every,
    )
    shares: Dict[str, float] = {}
    share_rows = []
    for name, result in results.items():
        share = layer_share(result.message_history, "tman")
        shares[name] = share
        share_rows.append([name, f"{share * 100:.1f}%"])
    share_table = format_table(
        ["configuration", "T-Man share of traffic"],
        share_rows,
        title="Traffic attribution (paper: ~93.6% T-Man at K=8)",
    )
    return Fig7Result(
        results=results,
        tman_share=shares,
        report_memory=memory_table,
        report_messages=message_table + "\n\n" + share_table,
    )


def report(
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    part: str = "both",
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    fig = run_fig7(
        preset, seed=seed, workers=workers, fork=fork, queue=queue, engine=engine
    )
    if part == "a":
        return fig.report_memory
    if part == "b":
        return fig.report_messages
    return fig.report_memory + "\n\n" + fig.report_messages
