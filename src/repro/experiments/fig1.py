"""Figure 1: a catastrophic correlated failure under plain T-Man.

The paper's motivating figure: T-Man converges to a torus (1a → 1b),
then half the torus crashes and the surviving nodes merely re-link
locally — the shape is lost for good (1c).  We reproduce it as ASCII
density maps plus the homogeneity numbers (stable around 5.25 after the
failure at paper scale, i.e. one quarter of the torus width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..viz.ascii import occupancy_stats, render_density
from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .scenario import ScenarioConfig, run_scenario


@dataclass
class Fig1Result:
    homogeneity_converged: float
    homogeneity_after_failure: float
    empty_fraction_converged: float
    empty_fraction_after_failure: float
    report: str


def run_fig1(
    preset: Optional[ScalePreset] = None, seed: int = 0,
    engine: Optional[str] = None,
) -> Fig1Result:
    preset = preset or get_preset()
    fr = preset.failure_round
    total = fr + 20
    config = ScenarioConfig.from_preset(
        preset,
        protocol="tman",
        reinjection_round=None,
        total_rounds=total,
        seed=seed,
        snapshot_rounds=(0, fr - 1, total - 1),
        **({"engine": engine} if engine else {}),
    )
    result = run_scenario(config)
    periods = config.grid.periods
    # One render cell per grid position so occupancy reads directly as
    # node coverage of the shape.
    cols, rows = min(preset.width, 80), min(preset.height, 40)

    sections: List[str] = []
    labels = {
        0: "(a) Round 0",
        fr - 1: "(b) After convergence",
        total - 1: "(c) After the catastrophic failure",
    }
    stats: Dict[int, dict] = {}
    for rnd, label in labels.items():
        positions = result.snapshots[rnd]
        sections.append(
            render_density(positions, periods, cols=cols, rows=rows, title=label)
        )
        stats[rnd] = occupancy_stats(positions, periods, cols=cols, rows=rows)

    hom = result.series["homogeneity"]
    rows = [
        ["converged (pre-failure)", hom[fr - 1], stats[fr - 1]["empty_fraction"]],
        ["after failure (final)", hom[total - 1], stats[total - 1]["empty_fraction"]],
    ]
    table = format_table(
        ["state", "homogeneity", "empty cell fraction"],
        rows,
        title="Figure 1 — T-Man alone loses the shape",
    )
    sections.append(table)
    sections.append(
        "T-Man heals its links but homogeneity stays high: the emptied "
        "half of the torus is never re-covered."
    )
    return Fig1Result(
        homogeneity_converged=hom[fr - 1],
        homogeneity_after_failure=hom[total - 1],
        empty_fraction_converged=stats[fr - 1]["empty_fraction"],
        empty_fraction_after_failure=stats[total - 1]["empty_fraction"],
        report="\n\n".join(sections),
    )


def report(
    preset: Optional[ScalePreset] = None, seed: int = 0,
    engine: Optional[str] = None,
) -> str:
    return run_fig1(preset, seed, engine=engine).report
