"""Reproduction experiments: one module per table/figure of the paper.

Run any experiment by id via :func:`run_experiment`, or use the
figure modules directly for structured results.
"""

from .presets import PAPER, PRESETS, REDUCED, SMOKE, ScalePreset, get_preset
from .registry import DESCRIPTIONS, experiment_names, run_experiment
from .scenario import (
    PROTOCOLS,
    ScenarioConfig,
    ScenarioResult,
    build_simulation,
    finish_scenario,
    prepare_scenario,
    run_scenario,
)
from .suite import run_comparison, scenario_name, snapshot_rounds_for
from .sweep import SweepResult, run_seed_sweep

__all__ = [
    "ScalePreset",
    "PRESETS",
    "SMOKE",
    "REDUCED",
    "PAPER",
    "get_preset",
    "ScenarioConfig",
    "ScenarioResult",
    "PROTOCOLS",
    "run_scenario",
    "prepare_scenario",
    "finish_scenario",
    "build_simulation",
    "run_comparison",
    "scenario_name",
    "snapshot_rounds_for",
    "run_experiment",
    "experiment_names",
    "DESCRIPTIONS",
    "run_seed_sweep",
    "SweepResult",
]
