"""Figures 8 and 9: snapshots of repair and reinjection.

Fig. 8 photographs Polystyrene (K = 4) two rounds after the failure
("repair started") and eight rounds after ("repair completed"): the
surviving nodes have flowed back over the whole torus.  Fig. 9
contrasts T-Man and Polystyrene 25 rounds after reinjection: T-Man's
fresh nodes stay on their parallel grid while its survivors crowd the
old half; Polystyrene is uniform again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..viz.ascii import occupancy_stats, render_density
from ..viz.tables import format_table
from .presets import ScalePreset, get_preset
from .suite import run_comparison, scenario_name


@dataclass
class Fig89Result:
    empty_fraction_repair_started: float
    empty_fraction_repair_done: float
    empty_fraction_tman_reinjected: float
    empty_fraction_poly_reinjected: float
    report: str


def run_fig89(
    preset: Optional[ScalePreset] = None, seed: int = 0, k: int = 4,
    workers: int = 1, fork: bool = False, queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> Fig89Result:
    preset = preset or get_preset()
    results = run_comparison(
        preset, seed=seed, workers=workers, fork=fork, queue=queue,
        engine=engine,
    )
    poly = results[scenario_name("polystyrene", k)]
    tman = results[scenario_name("tman")]
    periods = poly.config.grid.periods
    # Half-resolution cells (4 grid positions each): after the failure
    # only half the nodes survive, so uniform coverage means ~2 nodes
    # per cell and an empty cell really is a hole in the shape.
    cols = min(max(preset.width // 2, 1), 80)
    rows = min(max(preset.height // 2, 1), 40)

    fr = preset.failure_round
    rr = min(preset.reinjection_round + 25, preset.total_rounds - 1)
    sections = []
    stats: Dict[str, dict] = {}

    for label, result, rnd in (
        (f"Fig 8a — Polystyrene K={k}, repair started (r={fr + 2})", poly, fr + 2),
        (f"Fig 8b — Polystyrene K={k}, repair completed (r={fr + 8})", poly, fr + 8),
        (f"Fig 9a — T-Man after reinjection (r={rr})", tman, rr),
        (f"Fig 9b — Polystyrene K={k} after reinjection (r={rr})", poly, rr),
    ):
        positions = result.snapshots[rnd]
        sections.append(
            render_density(positions, periods, cols=cols, rows=rows, title=label)
        )
        stats[label] = occupancy_stats(positions, periods, cols=cols, rows=rows)

    keys = list(stats)
    rows = [
        [label, s["empty_fraction"], s["max_occupancy"]]
        for label, s in stats.items()
    ]
    sections.append(
        format_table(
            ["snapshot", "empty cell fraction", "max cell occupancy"],
            rows,
            title="Coverage statistics",
        )
    )
    return Fig89Result(
        empty_fraction_repair_started=stats[keys[0]]["empty_fraction"],
        empty_fraction_repair_done=stats[keys[1]]["empty_fraction"],
        empty_fraction_tman_reinjected=stats[keys[2]]["empty_fraction"],
        empty_fraction_poly_reinjected=stats[keys[3]]["empty_fraction"],
        report="\n\n".join(sections),
    )


def report(
    preset: Optional[ScalePreset] = None, seed: int = 0, workers: int = 1,
    fork: bool = False, queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    return run_fig89(
        preset, seed, workers=workers, fork=fork, queue=queue, engine=engine
    ).report
