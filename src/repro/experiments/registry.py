"""Registry mapping experiment ids to report functions.

Every table and figure of the paper's evaluation has an entry; each
callable takes ``(preset=None, seed=0)`` (plus experiment-specific
keywords) and returns a printable text report with the same rows/series
the paper plots.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ExperimentNotFoundError
from . import fig1, fig6, fig7, fig89, fig10, table2
from .presets import ScalePreset

ReportFn = Callable[..., str]

_REGISTRY: Dict[str, ReportFn] = {
    # ``workers`` fans the underlying simulation grid across processes
    # via repro.runtime (identical results to the serial path); ``fork``
    # additionally reuses cached Phase-1 checkpoints across cells and
    # invocations (also result-identical); ``queue`` distributes the
    # grid over a shared cluster work queue (repro.runtime.cluster),
    # drained by every worker pointed at it (also result-identical).
    # ``engine`` selects the execution backend (event | batch) — the one
    # knob that changes trajectories (statistically equivalent results;
    # see README "Execution engines").
    "fig1": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig1.report(preset, seed, engine=engine)
    ),
    "fig6a": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig6.report(
            preset, seed, part="a", workers=workers, fork=fork, queue=queue,
            engine=engine,
        )
    ),
    "fig6b": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig6.report(
            preset, seed, part="b", workers=workers, fork=fork, queue=queue,
            engine=engine,
        )
    ),
    "fig7a": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig7.report(
            preset, seed, part="a", workers=workers, fork=fork, queue=queue,
            engine=engine,
        )
    ),
    "fig7b": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig7.report(
            preset, seed, part="b", workers=workers, fork=fork, queue=queue,
            engine=engine,
        )
    ),
    "fig8": fig89.report,
    "fig9": fig89.report,
    "table2": table2.report,
    "fig10a": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig10.report(
            preset, seed, part="a", workers=workers, fork=fork, queue=queue,
            engine=engine,
        )
    ),
    "fig10b": lambda preset=None, seed=0, workers=1, fork=False, queue=None, engine=None: (
        fig10.report(
            preset, seed, part="b", workers=workers, fork=fork, queue=queue,
            engine=engine,
        )
    ),
}

DESCRIPTIONS: Dict[str, str] = {
    "fig1": "T-Man alone loses the torus after a catastrophic failure",
    "fig6a": "Homogeneity over rounds: Polystyrene K∈{2,4,8} vs T-Man",
    "fig6b": "Proximity over rounds: Polystyrene K∈{2,4,8} vs T-Man",
    "fig7a": "Memory overhead: average data points per node",
    "fig7b": "Communication cost per node per round",
    "fig8": "Snapshots of the repair (failure+2, failure+8)",
    "fig9": "Snapshots after reinjection: T-Man vs Polystyrene",
    "table2": "Reshaping time and reliability vs K (mean ± 95% CI)",
    "fig10a": "Reshaping time vs network size, K∈{2,4,8}",
    "fig10b": "Reshaping time vs network size per SPLIT function",
}


def experiment_names() -> list:
    return sorted(_REGISTRY)


def run_experiment(
    name: str,
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    workers: int = 1,
    fork: bool = False,
    queue: Optional[str] = None,
    engine: Optional[str] = None,
    **kwargs,
) -> str:
    """Run one experiment by id and return its text report.

    ``workers > 1`` parallelises the experiment's independent
    simulations across processes without changing any result;
    ``fork=True`` reuses (and populates) the persistent Phase-1
    checkpoint cache, also without changing any result; ``queue``
    distributes the experiment's grid over a shared cluster work queue
    (any machine running ``repro worker`` against it helps), again
    without changing any result.  ``engine="batch"`` runs the grid
    under the batch-synchronous vectorised engine — statistically
    equivalent curves, several times faster per simulation.
    """
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise ExperimentNotFoundError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None
    if engine is not None:
        kwargs["engine"] = engine
    return fn(
        preset=preset, seed=seed, workers=workers, fork=fork, queue=queue,
        **kwargs,
    )
