"""Scale presets for the reproduction experiments.

The paper's evaluation torus is an 80×40 unit grid (3,200 nodes) run
for 200 rounds, with the catastrophic failure at round 20 and the
reinjection at round 100; Fig. 10 scales the torus up to 320×160
(51,200 nodes).  Pure-Python simulation of the full scale is possible
but slow, so every experiment accepts a *preset* and defaults to a
reduced scale that preserves the torus aspect ratio (2:1), the unit
step, the phase structure and therefore the qualitative shape of every
result.  Select with the ``REPRO_SCALE`` environment variable
(``smoke`` / ``reduced`` / ``paper``) or pass a preset explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError

ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class ScalePreset:
    """One coherent set of scenario dimensions."""

    name: str
    width: int
    height: int
    failure_round: int
    reinjection_round: int
    total_rounds: int
    #: Number of independent seeds for CI-averaged experiments
    #: (Table II uses 25 in the paper).
    repetitions: int
    #: Torus sizes (width, height) for the Fig. 10 scalability sweep.
    sweep_grids: Tuple[Tuple[int, int], ...]

    @property
    def n_nodes(self) -> int:
        return self.width * self.height


SMOKE = ScalePreset(
    name="smoke",
    width=16,
    height=8,
    failure_round=10,
    reinjection_round=40,
    total_rounds=70,
    repetitions=3,
    sweep_grids=((8, 4), (16, 8), (24, 12)),
)

REDUCED = ScalePreset(
    name="reduced",
    width=32,
    height=16,
    failure_round=20,
    reinjection_round=80,
    total_rounds=140,
    repetitions=5,
    sweep_grids=((16, 8), (24, 12), (32, 16), (48, 24)),
)

PAPER = ScalePreset(
    name="paper",
    width=80,
    height=40,
    failure_round=20,
    reinjection_round=100,
    total_rounds=200,
    repetitions=25,
    sweep_grids=((20, 10), (40, 20), (80, 40), (160, 80), (320, 160)),
)

PRESETS = {preset.name: preset for preset in (SMOKE, REDUCED, PAPER)}


def get_preset(name: str = None) -> ScalePreset:
    """Resolve a preset by name, by ``REPRO_SCALE``, or the default."""
    if name is None:
        name = os.environ.get(ENV_VAR, "reduced")
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
