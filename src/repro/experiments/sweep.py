"""Multi-seed sweeps: repeat a scenario and aggregate with CIs.

The paper averages 25 repetitions with 95% confidence intervals
(Sec. IV-B).  :func:`run_seed_sweep` packages that protocol for any
scenario configuration, producing round-wise mean series plus CI
summaries of the scalar outcomes (reshaping time, reliability).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.stats import MeanCI, aggregate_series, mean_ci
from .scenario import ScenarioConfig, ScenarioResult


@dataclass
class SweepResult:
    """Aggregate over one configuration run under several seeds."""

    config: ScenarioConfig
    seeds: List[int]
    runs: List[ScenarioResult]
    #: Round-wise mean of every recorded metric.
    mean_series: Dict[str, List[float]]
    #: Mean ± CI of the reshaping time over converged runs, or ``None``
    #: when no run converged (or no failure was scheduled).
    reshaping: Optional[MeanCI]
    #: Number of runs that never re-converged under the reference
    #: homogeneity (excluded from ``reshaping``).
    non_converged: int
    #: Mean ± CI of the reliability, or ``None`` without a failure.
    reliability: Optional[MeanCI]

    def series_at(self, metric: str, rnd: int) -> float:
        return self.mean_series[metric][rnd]


def run_seed_sweep(
    config: ScenarioConfig, seeds: Sequence[int], workers: int = 1,
    fork: bool = False, queue: Optional[str] = None,
    engine: Optional[str] = None,
) -> SweepResult:
    """Run ``config`` once per seed and aggregate the results.

    With ``workers > 1`` the repetitions fan out across processes via
    :func:`repro.runtime.runner.run_scenarios`; per-seed results are
    identical to the serial path either way.  ``fork=True`` routes the
    repetitions through the phase-fork planner
    (:func:`repro.runtime.forksweep.fork_scenarios`): each seed is its
    own pre-failure prefix, so the win here is the persistent checkpoint
    cache — re-sweeping the same seeds with different post-failure
    parameters skips every Phase 1.  ``queue`` runs the repetitions
    through a shared cluster work queue
    (:mod:`repro.runtime.cluster`), draining cooperatively with any
    other machine pointed at it.  Results are identical on every path.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("a sweep needs at least one seed")
    configs = [replace(config, seed=seed) for seed in seeds]
    from ..runtime.dispatch import execute_scenarios

    runs = execute_scenarios(
        configs, workers=workers, fork=fork, queue=queue, engine=engine
    )

    mean_series = {
        metric: aggregate_series([run.series[metric] for run in runs])
        for metric in runs[0].series
    }
    reshaping_samples = [
        float(run.reshaping_time)
        for run in runs
        if run.reshaping_time is not None
    ]
    reliability_samples = [
        run.reliability for run in runs if run.reliability is not None
    ]
    return SweepResult(
        config=config,
        seeds=seeds,
        runs=runs,
        mean_series=mean_series,
        reshaping=mean_ci(reshaping_samples) if reshaping_samples else None,
        non_converged=sum(
            1
            for run in runs
            if run.reshaping_time is None and run.reliability is not None
        ),
        reliability=(
            mean_ci(reliability_samples) if reliability_samples else None
        ),
    )
