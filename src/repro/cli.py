"""Command-line entry point: ``repro-experiments`` / ``python -m repro``.

Examples::

    repro-experiments list
    repro-experiments run fig6a --scale reduced --seed 1
    repro-experiments run table2 --scale smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError
from .experiments.presets import PRESETS, get_preset
from .experiments.registry import DESCRIPTIONS, experiment_names, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Polystyrene (ICDCS 2014) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", choices=experiment_names())
    run.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'reduced')",
    )
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in experiment_names())
        for name in experiment_names():
            print(f"{name.ljust(width)}  {DESCRIPTIONS.get(name, '')}")
        return 0
    try:
        preset = get_preset(args.scale)
        print(run_experiment(args.experiment, preset=preset, seed=args.seed))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
