"""Command-line entry point: ``repro`` / ``repro-experiments`` /
``python -m repro``.

Examples::

    repro list
    repro run fig6a --scale reduced --seed 1
    repro run fig10a --scale smoke --workers 4
    repro run --resume sweep.ckpt --rounds 20 --save-checkpoint sweep2.ckpt
    repro sweep --scale smoke --ks 2,4 --seeds 3 --workers 4 --store results.jsonl
    repro sweep --scale smoke --fork --failure-fractions 0.25,0.5 --reinjection both
    repro sweep --scale smoke --distributed --queue /mnt/share/q --store results.jsonl
    repro worker --queue /mnt/share/q --drain
    repro queue status /mnt/share/q
    repro queue merge /mnt/share/q --store results.jsonl
    repro checkpoints ls
    repro checkpoints gc --older-than 7 --queue /mnt/share/q
    repro results results.jsonl --diff other.jsonl
    repro results results.jsonl --verify
    repro sweep --scale smoke --obs-dir runs/r1 --log-level info --profile
    repro obs report runs/r1
    repro obs report runs/r1 --format json
    repro obs tail runs/r1 --stream metrics --lines 10
    repro obs tail runs/r1 --stream spans --follow
    repro obs series runs/r1 --column wall_s
    repro obs series runs/r1 --cell k4 --round-range 20:60
    repro obs watch runs/r1
    repro obs mem runs/r1 --top 10
    repro obs trace tree runs/r1
    repro obs trace critical-path runs/r1
    repro obs export runs/r1 --format chrome --out trace.json
    repro obs export runs/r1 --format prometheus --out -
    repro obs diff runs/base runs/candidate --gate
    repro eval list --scale reduced
    repro eval run --gate --engine batch --scale reduced --store eval.jsonl
    repro eval run --scale reduced --update-expected --store eval.jsonl
    repro eval report eval-report.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .errors import ReproError
from .experiments.presets import PRESETS, get_preset
from .experiments.registry import DESCRIPTIONS, experiment_names, run_experiment


def _parse_int_list(text: str) -> List[int]:
    """``"2,4,8"`` → ``[2, 4, 8]``; a bare integer N → ``range(N)``
    semantics are handled by the callers that want counts."""
    return [int(part) for part in text.split(",") if part.strip()]


def _parse_float_list(text: str) -> List[float]:
    """``"0.25,0.5"`` → ``[0.25, 0.5]``."""
    return [float(part) for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polystyrene (ICDCS 2014) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every command that executes
    # simulations (run/sweep/worker); `repro obs` reads what they wrote.
    obs_options = argparse.ArgumentParser(add_help=False)
    obs_options.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "off"),
        default=None,
        help="structured event logging to stderr (and, with --obs-dir, "
        "to obs/events.jsonl); default: $REPRO_LOG or off",
    )
    obs_options.add_argument(
        "--obs-dir",
        metavar="DIR",
        default=None,
        help="run directory for observability artifacts "
        "(obs/events.jsonl, obs/metrics.jsonl, obs/profile.json); "
        "setting it enables metrics collection",
    )
    obs_options.add_argument(
        "--profile",
        action="store_true",
        help="profile the run (cProfile + per-round phase timing + peak "
        "RSS/array-bytes sampling) and write obs/profile.json under "
        "--obs-dir (default: ./obs/)",
    )

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser(
        "run",
        help="run one experiment and print its report, or resume a "
        "simulation checkpoint",
        parents=[obs_options],
    )
    run.add_argument(
        "experiment",
        nargs="?",
        choices=experiment_names(),
        help="experiment id (omit when using --resume)",
    )
    run.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'reduced')",
    )
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument(
        "--engine",
        choices=("event", "batch"),
        default=None,
        help="execution engine: 'event' (per-node, semantics v1) or "
        "'batch' (batch-synchronous vectorised, semantics v2 — "
        "statistically equivalent results, several times faster); "
        "with --resume, converts the checkpoint to the chosen engine",
    )
    run.add_argument(
        "--kernel-backend",
        choices=("numpy", "numba"),
        default=None,
        help="kernel backend for the batch engine's hot kernels "
        "(default: $REPRO_KERNEL_BACKEND or 'numpy'); 'numba' uses the "
        "optional compiled kernels when installed and silently falls "
        "back to numpy otherwise — results are byte-identical",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan the experiment's independent simulations across N "
        "worker processes (identical results to --workers 1)",
    )
    run.add_argument(
        "--fork",
        action="store_true",
        help="reuse/populate the persistent Phase-1 checkpoint cache "
        "(identical results; see 'repro checkpoints')",
    )
    run.add_argument(
        "--queue",
        metavar="QUEUE",
        default=None,
        help="distribute the experiment's simulation grid over this "
        "shared work queue and help drain it (identical results; any "
        "'repro worker --queue' pointed here participates)",
    )
    run.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        default=None,
        help="resume a saved simulation checkpoint instead of running "
        "an experiment",
    )
    run.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="with --resume: how many additional rounds to run",
    )
    run.add_argument(
        "--save-checkpoint",
        metavar="PATH",
        default=None,
        help="with --resume: write the post-run state to a new checkpoint",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a (K × split × seed) scenario grid through the "
        "parallel runner, persisting every cell to a result store",
        parents=[obs_options],
    )
    sweep.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'reduced')",
    )
    sweep.add_argument(
        "--ks",
        type=_parse_int_list,
        default=[2, 4, 8],
        metavar="K,K,...",
        help="replication factors to sweep (default 2,4,8)",
    )
    sweep.add_argument(
        "--splits",
        default="advanced",
        metavar="S,S,...",
        help="comma-separated SPLIT functions (default: advanced)",
    )
    sweep.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="number of seeds per cell (default: the preset's repetitions)",
    )
    sweep.add_argument(
        "--failure-fractions",
        type=_parse_float_list,
        default=None,
        metavar="F,F,...",
        help="ablate the failed fraction of the torus (adds a grid "
        "axis; cells differing only here share a Phase-1 prefix "
        "under --fork)",
    )
    sweep.add_argument(
        "--reinjection",
        choices=("on", "off", "both"),
        default="on",
        help="keep the preset's reinjection phase, drop it, or ablate "
        "both variants as a grid axis (default: on)",
    )
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument(
        "--engine",
        choices=("event", "batch"),
        default=None,
        help="execution engine for every cell (default: event); batch "
        "cells are recorded under engine='batch' configs and never "
        "compare equal to event cells",
    )
    sweep.add_argument(
        "--kernel-backend",
        choices=("numpy", "numba"),
        default=None,
        help="kernel backend for batch-engine cells (byte-identical "
        "results; exported to worker processes via "
        "REPRO_KERNEL_BACKEND)",
    )
    fork_group = sweep.add_mutually_exclusive_group()
    fork_group.add_argument(
        "--fork",
        action="store_true",
        dest="fork",
        help="simulate each shared pre-failure prefix once, checkpoint "
        "it, and fork every ablation cell from the cached snapshot "
        "(byte-identical results to --no-fork)",
    )
    fork_group.add_argument(
        "--no-fork",
        action="store_false",
        dest="fork",
        help="cold-start every cell (the default)",
    )
    sweep.set_defaults(fork=False)
    sweep.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="checkpoint cache directory for --fork "
        "(default: $REPRO_CHECKPOINT_DIR or .repro-checkpoints)",
    )
    sweep.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="append results to this JSONL store (enables --resume-run)",
    )
    sweep.add_argument(
        "--run-id",
        default=None,
        help="run id to record under (with --resume-run: the run to continue)",
    )
    sweep.add_argument(
        "--resume-run",
        action="store_true",
        help="skip cells already recorded ok in the store (latest run, "
        "or --run-id)",
    )
    sweep.add_argument(
        "--distributed",
        action="store_true",
        help="publish the grid to a shared work queue (--queue) instead "
        "of running it locally; any machine running 'repro worker' "
        "against the queue helps drain it (results identical to a "
        "local run)",
    )
    sweep.add_argument(
        "--queue",
        metavar="QUEUE",
        default=None,
        help="shared work queue for --distributed: a directory "
        "(NFS-style share) or a .db/.sqlite file",
    )
    sweep.add_argument(
        "--no-join",
        action="store_true",
        help="with --distributed: only publish (grid + prefix "
        "checkpoints) and exit; do not run local workers or wait",
    )
    sweep.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --distributed: lease duration before a silent "
        "worker's cell is re-offered (default 120)",
    )
    sweep.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="with --distributed: attempts per cell before it is "
        "recorded as an error (default 3)",
    )

    worker = sub.add_parser(
        "worker",
        help="run one cluster worker: claim, simulate, and record cells "
        "from a shared queue until it completes",
        parents=[obs_options],
    )
    worker.add_argument(
        "--queue",
        metavar="QUEUE",
        required=True,
        help="the shared work queue (directory or .db/.sqlite file)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N cells",
    )
    worker.add_argument(
        "--drain",
        action="store_true",
        help="exit as soon as nothing is claimable (instead of waiting "
        "for the whole queue to complete)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle polling interval (default 0.5)",
    )

    queue = sub.add_parser(
        "queue",
        help="inspect, repair, or merge a distributed-sweep work queue",
    )
    queue.add_argument(
        "action",
        choices=("status", "requeue", "merge"),
        help="status: progress/leases/workers; requeue: release leases "
        "or reset cells; merge: fold worker shards into a result store",
    )
    queue.add_argument(
        "queue", metavar="QUEUE", help="the shared work queue path"
    )
    queue.add_argument(
        "--task",
        action="append",
        default=None,
        metavar="ID",
        help="with requeue: force this cell back to pending (repeatable)",
    )
    queue.add_argument(
        "--failed",
        action="store_true",
        help="with requeue: reset every errored cell to pending",
    )
    queue.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="with merge: the JSONL result store to merge into",
    )
    queue.add_argument(
        "--run-id",
        default=None,
        help="with merge: record under this run id (default: the "
        "queue's published run id)",
    )

    checkpoints = sub.add_parser(
        "checkpoints",
        help="inspect or clean the phase-fork checkpoint cache",
    )
    checkpoints.add_argument(
        "action",
        choices=("ls", "gc"),
        help="ls: list cached prefixes; gc: delete them",
    )
    checkpoints.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="cache directory "
        "(default: $REPRO_CHECKPOINT_DIR or .repro-checkpoints)",
    )
    checkpoints.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="with gc: only delete checkpoints older than DAYS days "
        "(default: delete everything)",
    )
    checkpoints.add_argument(
        "--queue",
        action="append",
        default=None,
        metavar="QUEUE",
        help="with gc: never delete checkpoints still referenced by "
        "this work queue's unfinished cells (repeatable)",
    )

    results = sub.add_parser(
        "results", help="inspect a result store written by 'repro sweep'"
    )
    results.add_argument("store", help="path to the JSONL result store")
    results.add_argument("--run-id", default=None, help="restrict to one run")
    results.add_argument(
        "--status", choices=("ok", "error"), default=None, help="filter by status"
    )
    results.add_argument(
        "--diff",
        metavar="OTHER",
        default=None,
        help="compare per-cell summaries against another store (exit 1 "
        "on any difference) — the distributed-vs-serial equivalence "
        "check",
    )
    results.add_argument(
        "--verify",
        action="store_true",
        help="run a full offline integrity check of the store (record "
        "kinds, config hashes, torn tail vs mid-file corruption, "
        "duplicates); exit 1 on any fatal problem",
    )

    eval_cmd = sub.add_parser(
        "eval",
        help="the paper-conformance claims gate: run claim cases, score "
        "them against recorded expectations, report, and gate CI",
        parents=[obs_options],
    )
    eval_cmd.add_argument(
        "action",
        choices=("run", "report", "list"),
        help="run: execute + score the claims dataset; report: render a "
        "saved JSON report; list: show the dataset's cases",
    )
    eval_cmd.add_argument(
        "target",
        nargs="?",
        default=None,
        help="with report: path to a JSON report written by "
        "'eval run --report'",
    )
    eval_cmd.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="which preset's claims to run (default: $REPRO_SCALE or "
        "'reduced'); cross-engine equivalence claims always ride along "
        "at smoke scale",
    )
    eval_cmd.add_argument(
        "--engine",
        choices=("event", "batch", "both"),
        default="both",
        help="gate this engine's conformance (default both); "
        "cross-engine claims always run both",
    )
    eval_cmd.add_argument(
        "--case",
        action="append",
        default=None,
        metavar="SUBSTR",
        help="only cases whose id contains SUBSTR (repeatable)",
    )
    eval_cmd.add_argument(
        "--store",
        metavar="PATH",
        default="eval-results.jsonl",
        help="result store backing the run — cells already recorded ok "
        "for an identical configuration are reused instead of "
        "re-simulated (default: eval-results.jsonl)",
    )
    eval_cmd.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        dest="report_path",
        help="also write the machine-readable JSON report here",
    )
    eval_cmd.add_argument(
        "--gate",
        action="store_true",
        help="exit nonzero if any claim fails (the CI regression gate)",
    )
    eval_cmd.add_argument(
        "--update-expected",
        action="store_true",
        help="regenerate the recorded expectations for the cases just "
        "run (also triggered by REPRO_UPDATE_EXPECTED=1); incompatible "
        "with --gate and --engine != both",
    )
    eval_cmd.add_argument(
        "--tolerance-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="scale every recorded tolerance band by X (0 = zero-width "
        "bands; the gate self-test uses this to prove perturbed "
        "expectations fail)",
    )
    eval_cmd.add_argument("--workers", type=int, default=1)
    eval_cmd.add_argument(
        "--fork",
        action="store_true",
        help="execute uncached cells through the Phase-1 checkpoint "
        "cache (identical results)",
    )
    eval_cmd.add_argument(
        "--queue",
        metavar="QUEUE",
        default=None,
        help="distribute uncached cells over this shared work queue",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="inspect observability artifacts written by "
        "--log-level/--obs-dir/--profile runs",
    )
    obs_sub = obs_cmd.add_subparsers(
        dest="obs_action", required=True, metavar="ACTION"
    )
    target_help = (
        "a run directory (containing obs/), an obs/ directory, a "
        "metrics/events/spans/series .jsonl file, a mem.json, or a "
        "profile.json"
    )

    obs_tail = obs_sub.add_parser(
        "tail", help="last structured events/metrics/spans lines"
    )
    obs_tail.add_argument("target", help=target_help)
    obs_tail.add_argument(
        "--lines",
        type=int,
        default=20,
        metavar="N",
        help="how many trailing lines to show (default 20)",
    )
    obs_tail.add_argument(
        "--stream",
        choices=("events", "metrics", "spans", "series"),
        default="events",
        help="which stream to read (default events)",
    )
    obs_tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling the stream and print records as they are "
        "appended (tail -f); Ctrl-C to stop",
    )
    obs_tail.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="with --follow: poll interval in seconds (default 0.5)",
    )

    obs_report = obs_sub.add_parser(
        "report",
        help="aggregate per-phase/per-kernel timings (with percentile "
        "columns), counters, and gauges",
    )
    obs_report.add_argument("target", help=target_help)
    obs_report.add_argument(
        "--format",
        dest="fmt",
        choices=("table", "json"),
        default="table",
        help="table: aligned text tables (default); json: the merged "
        "snapshot as one machine-readable JSON object",
    )

    obs_series = obs_sub.add_parser(
        "series",
        help="per-round time-series: min/max/last + sparkline per "
        "column (round wall, per-layer/per-kernel time, node counts, "
        "memory ledger, health probes)",
    )
    obs_series.add_argument("target", help=target_help)
    obs_series.add_argument(
        "--cell",
        default=None,
        metavar="SUBSTR",
        help="only records whose run/worker/cell context contains this "
        "substring (sweeps interleave cells)",
    )
    obs_series.add_argument(
        "--column",
        default=None,
        metavar="SUBSTR",
        help="only columns whose dotted name contains this substring "
        "(e.g. wall_s, layers.tman, mem.node_table)",
    )
    obs_series.add_argument(
        "--round-range",
        default=None,
        metavar="LO:HI",
        help="inclusive round range, either end optional (e.g. 10:80, "
        ":40, 60:)",
    )

    obs_watch = obs_sub.add_parser(
        "watch",
        help="live-follow a running simulation's series stream "
        "(one line per completed round; Ctrl-C to stop)",
    )
    obs_watch.add_argument("target", help=target_help)
    obs_watch.add_argument(
        "--stream",
        choices=("series", "events", "metrics", "spans"),
        default="series",
        help="which stream to watch (default series)",
    )
    obs_watch.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="poll interval in seconds (default 0.5)",
    )
    obs_watch.add_argument(
        "--from-start",
        action="store_true",
        help="replay the stream from its first record before following "
        "(default: only new records)",
    )

    obs_mem = obs_sub.add_parser(
        "mem",
        help="the memory ledger's peak-attribution report: per-family "
        "current/peak bytes and the top allocation sites with their "
        "peak rounds",
    )
    obs_mem.add_argument("target", help=target_help)
    obs_mem.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="how many allocation sites to show (default 20)",
    )

    obs_trace_cmd = obs_sub.add_parser(
        "trace",
        help="causal span analysis: the reconstructed trace tree, or "
        "the critical path with per-worker idle attribution",
    )
    obs_trace_cmd.add_argument(
        "trace_action",
        choices=("tree", "critical-path"),
        help="tree: the span tree (orphans annotated); critical-path: "
        "the longest blocking chain + worker busy/idle lanes",
    )
    obs_trace_cmd.add_argument("target", help=target_help)
    obs_trace_cmd.add_argument(
        "--depth",
        type=int,
        default=4,
        metavar="N",
        help="with tree: maximum tree depth to render (default 4)",
    )

    obs_export = obs_sub.add_parser(
        "export",
        help="export a run's spans for external viewers",
    )
    obs_export.add_argument("target", help=target_help)
    obs_export.add_argument(
        "--format",
        dest="fmt",
        choices=("chrome", "prometheus"),
        default="chrome",
        help="chrome: Chrome trace-event JSON — open in "
        "https://ui.perfetto.dev or chrome://tracing (default); "
        "prometheus: text exposition format for a node_exporter "
        "textfile collector",
    )
    obs_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output file (default <target>/obs/trace_chrome.json for "
        "chrome, <target>/obs/metrics.prom for prometheus, '-' for "
        "stdout)",
    )

    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two runs' timing histograms (metrics + spans) "
        "with noise floors",
    )
    obs_diff.add_argument("baseline", help=f"baseline run: {target_help}")
    obs_diff.add_argument("candidate", help=f"candidate run: {target_help}")
    obs_diff.add_argument(
        "--gate",
        action="store_true",
        help="exit nonzero when any histogram regresses past the "
        "threshold (CI regression gate)",
    )
    obs_diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative regression threshold on mean/p95 (default 0.5 "
        "= +50%%)",
    )
    obs_diff.add_argument(
        "--min-total",
        type=float,
        default=None,
        metavar="S",
        help="ignore histograms whose baseline total is under this "
        "many seconds (default 0.02)",
    )
    return parser


def _setup_obs(args):
    """Apply --log-level/--obs-dir/--profile for commands that execute
    simulations.  Returns an armed :class:`~repro.obs.profiling.Profiler`
    (to be written after the command body) or None."""
    from . import obs

    if not (args.log_level or args.obs_dir or args.profile):
        return None
    run_dir = args.obs_dir
    if args.profile and run_dir is None:
        run_dir = "."  # profile.json needs somewhere to land
    obs.configure(
        log_level=args.log_level,
        dir=run_dir,
        profile=True if args.profile else None,
    )
    if not args.profile:
        return None
    from .obs.profiling import Profiler

    profiler = Profiler()
    # Resolve the destination now, while the run dir this function just
    # configured is guaranteed to be set — _finish_obs then has no
    # unreachable "no dir" branch to pretend to cover.
    profiler.out_path = obs.profile_path()
    profiler.start()
    return profiler


def _finish_obs(args, profiler) -> None:
    """Write obs/profile.json for a profiled command."""
    if profiler is None:
        return
    wall = profiler.stop()
    profiler.write(profiler.out_path, ctx={"command": args.command}, wall_s=wall)
    print(f"profile written to {profiler.out_path}", file=sys.stderr)


def _cmd_list() -> int:
    width = max(len(name) for name in experiment_names())
    for name in experiment_names():
        print(f"{name.ljust(width)}  {DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_resume(args) -> int:
    from .runtime import checkpoint as ckpt

    loaded = ckpt.load(args.resume)
    print(f"loaded {loaded.describe()} from {args.resume}")
    sim = ckpt.restore(loaded, engine=args.engine)
    if args.engine:
        print(f"running under the {args.engine} engine")
    if args.rounds > 0:
        sim.run(args.rounds)
        print(
            f"ran {args.rounds} rounds -> round {sim.round}, "
            f"{sim.network.n_alive}/{sim.network.n_total} nodes alive"
        )
    print(f"state digest: {ckpt.state_digest(sim)}")
    if args.save_checkpoint:
        path = ckpt.save(ckpt.snapshot(sim), args.save_checkpoint)
        print(f"saved checkpoint to {path}")
    return 0


def _apply_kernel_backend(name: Optional[str]) -> None:
    """Activate a ``--kernel-backend`` choice process-wide and export it
    so worker subprocesses inherit it (``config_dict`` strips the knob —
    the environment is how it crosses process boundaries)."""
    if name is None:
        return
    from .sim.batch import backend as kernel_backend_mod

    os.environ[kernel_backend_mod.ENV_VAR] = name
    active = kernel_backend_mod.set_active(name)
    if active.name != name:
        print(
            f"kernel backend {name!r} unavailable; using {active.name!r}",
            file=sys.stderr,
        )


def _cmd_run(args) -> int:
    _apply_kernel_backend(args.kernel_backend)
    if args.resume is not None:
        return _cmd_resume(args)
    if args.experiment is None:
        print("error: provide an experiment id or --resume", file=sys.stderr)
        return 2
    preset = get_preset(args.scale)
    print(
        run_experiment(
            args.experiment,
            preset=preset,
            seed=args.seed,
            workers=args.workers,
            fork=args.fork,
            queue=args.queue,
            engine=args.engine,
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.scenario import ScenarioConfig
    from .runtime.forksweep import CheckpointCache, run_fork_sweep
    from .runtime.runner import ParallelRunner, grid_tasks
    from .runtime.store import ResultStore
    from .viz.tables import format_store_cells

    _apply_kernel_backend(args.kernel_backend)
    preset = get_preset(args.scale)
    seeds = args.seeds if args.seeds is not None else preset.repetitions
    splits = [part for part in args.splits.split(",") if part.strip()]
    overrides = {}
    if args.reinjection == "off":
        overrides["reinjection_round"] = None
    if args.engine:
        overrides["engine"] = args.engine
    base = ScenarioConfig.from_preset(
        preset, metrics=("homogeneity",), **overrides
    )
    axes = {
        "replication": args.ks,
        "split": splits,
        "seed": range(seeds),
    }
    # Only explicitly-requested ablation axes join the grid (and the
    # task ids), so default sweeps keep their historical cell names.
    if args.failure_fractions is not None:
        axes["failure_fraction"] = args.failure_fractions
    if args.reinjection == "both":
        axes["reinjection_round"] = (preset.reinjection_round, None)
    tasks = grid_tasks(base, axes)

    store = ResultStore(args.store) if args.store else None
    run_id = args.run_id
    if args.resume_run:
        if store is None:
            print("error: --resume-run needs --store", file=sys.stderr)
            return 2
        run_id = run_id or store.latest_run_id()
        if run_id is None:
            print("error: store has no run to resume", file=sys.stderr)
            return 2

    def progress(done: int, total: int, cell) -> None:
        mark = "ok " if cell.ok else "ERR"
        print(
            f"[{done}/{total}] {mark} {cell.task_id} "
            f"({cell.duration_s:.2f}s)",
            file=sys.stderr,
        )

    metadata = {
        "preset": preset.name,
        "ks": list(args.ks),
        "splits": splits,
        "seeds": seeds,
        "failure_fractions": args.failure_fractions,
        "reinjection": args.reinjection,
        "fork": args.fork,
        "engine": args.engine or "event",
        "kernel_backend": args.kernel_backend,
    }
    if args.distributed:
        return _sweep_distributed(args, tasks, store, run_id, metadata)
    if args.fork:
        cache = CheckpointCache(args.checkpoint_dir)
        cells = run_fork_sweep(
            tasks,
            workers=args.workers,
            cache=cache,
            store=store,
            run_id=run_id,
            metadata=metadata,
            progress=progress,
        )
    else:
        runner = ParallelRunner(workers=args.workers, progress=progress)
        cells = runner.run(tasks, store=store, run_id=run_id, metadata=metadata)

    records = [
        {
            "task_id": cell.task_id,
            "status": cell.status,
            "seed": cell.seed,
            "config": {
                "replication": cell.config.replication,
                "split": cell.config.split,
                "width": cell.config.width,
                "height": cell.config.height,
            },
            "summary": (
                {
                    "reliability": cell.result.reliability,
                    "reshaping_time": cell.result.reshaping_time,
                }
                if cell.result is not None
                else None
            ),
            "duration_s": cell.duration_s,
        }
        for cell in cells
    ]
    title = f"sweep over {len(cells)} cells ({preset.name} scale)"
    if not cells:
        if not tasks:
            print("nothing to do: the sweep grid is empty")
        else:
            print("nothing to do: every cell is already in the store")
    else:
        print(format_store_cells(records, title=title))
    errored = sum(1 for cell in cells if not cell.ok)
    if errored:
        print(f"warning: {errored} cells errored", file=sys.stderr)
    return 1 if errored else 0


def _sweep_distributed(args, tasks, store, run_id, metadata) -> int:
    from .runtime.cluster import (
        DEFAULT_LEASE_S,
        DEFAULT_MAX_ATTEMPTS,
        run_distributed_sweep,
    )
    from .runtime.forksweep import CheckpointCache
    from .viz.tables import format_store_cells

    if not args.queue:
        print("error: --distributed needs --queue", file=sys.stderr)
        return 2
    cache = (
        CheckpointCache(args.checkpoint_dir) if args.checkpoint_dir else None
    )

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    def progress(status) -> None:
        print(
            f"[{status.get('done', 0)}/{status.get('total', '?')}] "
            f"{status.get('leased', 0)} leased, "
            f"{status.get('pending', 0)} pending",
            file=sys.stderr,
        )

    outcome = run_distributed_sweep(
        tasks,
        args.queue,
        workers=args.workers,
        cache=cache,
        store=store,
        run_id=run_id,
        metadata=metadata,
        lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
        max_attempts=(
            args.max_attempts
            if args.max_attempts is not None
            else DEFAULT_MAX_ATTEMPTS
        ),
        join=not args.no_join,
        log=log,
        progress=progress,
    )
    manifest = outcome.manifest
    if not outcome.joined:
        print(
            f"published {manifest['n_tasks']} cells as run "
            f"{manifest['run_id']} to {args.queue}"
        )
        print(
            f"drain with:   repro worker --queue {args.queue}\n"
            f"inspect with: repro queue status {args.queue}\n"
            f"merge with:   repro queue merge {args.queue} --store "
            f"{args.store or 'results.jsonl'}"
        )
        return 0
    title = (
        f"distributed sweep over {len(outcome.records)} cells "
        f"(run {manifest['run_id']})"
    )
    print(format_store_cells(outcome.records, title=title))
    if outcome.merge is not None:
        print(outcome.merge.describe())
    errored = sum(
        1 for record in outcome.records if record.get("status") != "ok"
    )
    if errored:
        print(f"warning: {errored} cells errored", file=sys.stderr)
    return 1 if errored else 0


def _cmd_worker(args) -> int:
    import signal
    import threading

    from .runtime.cluster import Worker

    stop = threading.Event()

    def _handle(signum, frame):  # finish the current cell, then exit
        stop.set()

    previous = {
        sig: signal.signal(sig, _handle)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        worker = Worker(
            args.queue,
            worker_id=args.worker_id,
            poll_s=args.poll,
            log=lambda message: print(message, file=sys.stderr),
        )
        stats = worker.run(
            max_cells=args.max_cells, drain=args.drain, stop=stop
        )
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(
        f"worker {stats.worker_id}: {stats.cells_ok} ok, "
        f"{stats.cells_error} error, {stats.cells_lost} lost-race"
    )
    return 1 if stats.cells_error else 0


def _cmd_queue(args) -> int:
    from .runtime.cluster import merge_queue, open_queue
    from .runtime.store import ResultStore

    queue = open_queue(args.queue)
    if args.action == "status":
        status = queue.status()
        if not status.get("published"):
            print(f"queue {args.queue} has no published grid")
            return 1
        print(
            f"queue {status['path']}  run {status['run_id']}  "
            f"created {status['created']}"
        )
        print(
            f"{status['done']}/{status['total']} done "
            f"({status['ok']} ok, {status['failed']} failed), "
            f"{status['leased']} leased, {status['pending']} pending; "
            f"lease {status['lease_s']:.0f}s, "
            f"max attempts {status['max_attempts']}"
        )
        # Per-worker rollup: heartbeat age and attempt counts replace
        # the raw lease dump — a stale heartbeat is the signal that a
        # lease is about to be re-offered.
        now = status.get("now")
        leases_by_worker = {}
        for task_id, lease in sorted(status["leases"].items()):
            leases_by_worker.setdefault(lease["worker"], []).append(
                (task_id, lease.get("attempt", 1))
            )
        for worker_id, info in sorted(status["workers"].items()):
            last_seen = info.get("last_seen")
            age = (
                f"{max(0.0, now - last_seen):.0f}s ago"
                if now is not None and last_seen is not None
                else "never"
            )
            held = leases_by_worker.pop(worker_id, [])
            lease_text = ""
            if held:
                cells = ", ".join(
                    f"{task_id} (attempt {attempt})"
                    for task_id, attempt in held
                )
                lease_text = f"; working on {cells}"
            print(
                f"  worker {worker_id}: heartbeat {age}, "
                f"{info.get('cells_ok', 0)} ok, "
                f"{info.get('cells_error', 0)} error, "
                f"{info.get('cells_lost', 0)} lost-race{lease_text}"
            )
        # Leases whose holder never registered (e.g. a worker that died
        # before its first heartbeat) still deserve a line.
        for worker_id, held in sorted(leases_by_worker.items()):
            cells = ", ".join(
                f"{task_id} (attempt {attempt})" for task_id, attempt in held
            )
            print(f"  worker {worker_id}: unregistered; working on {cells}")
        return 0
    if args.action == "requeue":
        if args.task:
            reset = queue.reset(task_ids=args.task)
            print(f"reset {len(reset)} cell(s): {reset}")
        if args.failed:
            reset = queue.reset(failed_only=True)
            print(f"reset {len(reset)} failed cell(s): {reset}")
        if not args.task and not args.failed:
            released = queue.release_leases()
            print(f"released {released} lease(s) for immediate re-claim")
        return 0
    # merge
    if not args.store:
        print("error: queue merge needs --store", file=sys.stderr)
        return 2
    report = merge_queue(queue, ResultStore(args.store), run_id=args.run_id)
    print(report.describe())
    return 1 if report.missing else 0


def _cmd_checkpoints(args) -> int:
    import time as _time

    from .runtime.forksweep import CheckpointCache

    cache = CheckpointCache(args.dir)
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"no checkpoints cached under {cache.root}")
            return 0
        from .viz.tables import format_table

        now = _time.time()
        rows = []
        total = 0
        for entry in entries:
            total += entry.get("size_bytes", 0)
            rows.append(
                [
                    entry.get("prefix_hash", "?"),
                    entry.get("state_digest", "?")[:12],
                    entry.get("round", "?"),
                    entry.get("seed", "?"),
                    f"{entry.get('n_alive', '?')}/{entry.get('n_total', '?')}",
                    f"{entry.get('size_bytes', 0) / 1e6:.1f}MB",
                    f"{(now - entry['mtime']) / 3600.0:.1f}h",
                ]
            )
        print(
            format_table(
                ["prefix", "digest", "round", "seed", "alive", "size", "age"],
                rows,
                title=(
                    f"{len(entries)} cached prefix(es) under {cache.root} "
                    f"({total / 1e6:.1f}MB)"
                ),
            )
        )
        return 0
    older = None if args.older_than is None else args.older_than * 86400.0
    protect = set()
    if args.queue:
        from .runtime.cluster import open_queue

        for queue_path in args.queue:
            protect |= open_queue(queue_path).referenced_prefixes()
    removed = cache.gc(older_than_s=older, protect=protect)
    print(f"removed {len(removed)} checkpoint(s) from {cache.root}")
    if protect:
        print(
            f"(protected {len(protect)} prefix(es) still referenced by "
            "live queue cells)"
        )
    return 0


def _cmd_results(args) -> int:
    from .runtime.store import ResultStore
    from .viz.tables import format_store_cells

    store = ResultStore(args.store)
    if args.verify:
        report = store.verify()
        print(
            f"{report['path']}: {report['runs']} run(s), "
            f"{report['cells']} cell(s) "
            f"({report['cells_ok']} ok, {report['cells_error']} error), "
            f"{report['duplicates']} duplicate(s)"
        )
        if report["torn_tail"]:
            print(
                "note: torn trailing line (interrupted append) — "
                "ignored by readers, repaired by the next append"
            )
        for problem in report["problems"]:
            print(f"problem: {problem}", file=sys.stderr)
        print("verify: OK" if report["ok"] else "verify: FAILED")
        return 0 if report["ok"] else 1
    if args.diff is not None:
        from .runtime.cluster import diff_stores

        diffs = diff_stores(
            store, ResultStore(args.diff), run_a=args.run_id
        )
        if diffs:
            for line in diffs:
                print(line)
            print(f"{len(diffs)} cell(s) differ", file=sys.stderr)
            return 1
        print(f"{args.store} and {args.diff} hold equivalent cells")
        return 0
    runs = store.runs()
    if not runs:
        print(f"no runs recorded in {args.store}")
        return 1
    for record in runs:
        if args.run_id is not None and record["run_id"] != args.run_id:
            continue
        print(
            f"run {record['run_id']}  created {record['created']}  "
            f"git {record['git_rev'][:12]}"
        )
    cells = store.cells(run_id=args.run_id, status=args.status)
    print(format_store_cells(cells, title=f"{len(cells)} cells"))
    return 0


def _cmd_eval(args) -> int:
    from .analysis.bands import expected_value_and_tolerance
    from .eval import dataset as eval_dataset
    from .eval.report import (
        build_report,
        format_report,
        gate_exit,
        load_report,
        score_run,
        write_report,
    )
    from .eval.runner import ensembles_for_update, run_cases
    from .runtime.store import ResultStore

    if args.action == "report":
        if not args.target:
            print("error: eval report needs a JSON report path", file=sys.stderr)
            return 2
        report = load_report(args.target)
        print(format_report(report))
        return gate_exit(report) if args.gate else 0

    preset = get_preset(args.scale)
    cases = eval_dataset.claim_cases(preset.name)
    if args.case:
        cases = [
            case
            for case in cases
            if any(needle in case.case_id for needle in args.case)
        ]
        if not cases:
            print(
                f"error: no case id contains any of {args.case}",
                file=sys.stderr,
            )
            return 2

    if args.action == "list":
        from .viz.tables import format_table

        rows = [
            [
                case.case_id,
                case.paper_ref,
                case.scorer,
                case.engine,
                len(case.configs("event")),
                case.title,
            ]
            for case in cases
        ]
        print(
            format_table(
                ["case", "paper", "scorer", "engines", "cells/engine", "claim"],
                rows,
                title=f"{len(rows)} claim case(s) at {preset.name} scale",
            )
        )
        return 0

    update = args.update_expected or eval_dataset.update_expected_requested()
    engine = None if args.engine == "both" else args.engine
    if update and args.gate:
        print(
            "error: --update-expected rewrites the expectations the gate "
            "checks; run them separately",
            file=sys.stderr,
        )
        return 2
    if update and engine is not None:
        print(
            "error: --update-expected needs both engines' ensembles "
            "(run with --engine both)",
            file=sys.stderr,
        )
        return 2

    store = ResultStore(args.store)
    data = run_cases(
        cases,
        store,
        engine=engine,
        workers=args.workers,
        fork=args.fork,
        queue=args.queue,
        metadata={"preset": preset.name, "engine": args.engine},
        log=lambda message: print(message, file=sys.stderr),
    )

    if update:
        expected = eval_dataset.load_expected()
        expected.setdefault("cases", {})
        updated = 0
        for case in cases:
            if case.scorer != "band":
                continue
            groups = {}
            for label in case.variant_labels:
                stats = {}
                for stat, floor in sorted(case.param_dict["stats"].items()):
                    ensembles = ensembles_for_update(data, case, stat, label)
                    if not ensembles:
                        continue
                    value, tol = expected_value_and_tolerance(
                        ensembles, floor=floor
                    )
                    stats[stat] = {"value": value, "tol": tol}
                if stats:
                    groups[label] = stats
            if groups:
                expected["cases"][case.case_id] = {"groups": groups}
                updated += 1
        path = eval_dataset.save_expected(expected)
        print(f"recorded expectations for {updated} case(s) in {path}")

    scores = score_run(
        cases, data, tolerance_scale=args.tolerance_scale
    )
    report = build_report(
        scores,
        data,
        preset=preset.name,
        engine=args.engine,
        tolerance_scale=args.tolerance_scale,
    )
    if args.report_path:
        path = write_report(report, args.report_path)
        print(f"report written to {path}", file=sys.stderr)
    print(format_report(report))
    if args.gate:
        return gate_exit(report)
    return 1 if report["run"]["errors"] else 0


def _cmd_obs(args) -> int:
    import json
    from pathlib import Path

    from .obs import report as obs_report
    from .obs import trace as obs_trace

    try:
        if args.obs_action == "tail":
            print(
                obs_report.format_tail(
                    args.target, lines=args.lines, stream=args.stream
                )
            )
            if args.follow:
                try:
                    for line in obs_report.follow_stream(
                        args.target, stream=args.stream, poll_s=args.poll
                    ):
                        print(line, flush=True)
                except KeyboardInterrupt:
                    pass
            return 0
        if args.obs_action == "report":
            if args.fmt == "json":
                print(
                    json.dumps(
                        obs_report.build_report(args.target),
                        sort_keys=True,
                        indent=2,
                    )
                )
            else:
                print(obs_report.format_report(args.target))
            return 0
        if args.obs_action == "series":
            from .obs import series as obs_series

            print(
                obs_series.format_series(
                    args.target,
                    cell=args.cell,
                    column=args.column,
                    round_range=args.round_range,
                )
            )
            return 0
        if args.obs_action == "watch":
            try:
                for line in obs_report.follow_stream(
                    args.target,
                    stream=args.stream,
                    poll_s=args.poll,
                    from_start=args.from_start,
                ):
                    print(line, flush=True)
            except KeyboardInterrupt:
                pass
            return 0
        if args.obs_action == "mem":
            from .obs import mem as obs_mem

            print(obs_mem.format_mem(args.target, top=args.top))
            return 0
        if args.obs_action == "trace":
            if args.trace_action == "tree":
                print(obs_trace.format_tree(args.target, max_depth=args.depth))
            else:
                print(obs_trace.format_critical_path(args.target))
            return 0
        if args.obs_action == "export":
            out = args.out
            target = Path(args.target)
            base = target.parent if target.is_file() else target / "obs"
            if args.fmt == "prometheus":
                text = obs_report.format_prometheus(args.target)
                if out == "-":
                    print(text, end="")
                    return 0
                out = Path(out) if out is not None else base / "metrics.prom"
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(text, encoding="utf8")
                print(f"prometheus metrics written to {out}")
                return 0
            if out is None:
                out = base / "trace_chrome.json"
            path = obs_trace.write_chrome_trace(args.target, out)
            print(
                f"chrome trace written to {path}; open it in "
                "https://ui.perfetto.dev or chrome://tracing"
            )
            return 0
        # diff
        kwargs = {}
        if args.threshold is not None:
            kwargs["threshold"] = args.threshold
        if args.min_total is not None:
            kwargs["min_total_s"] = args.min_total
        diff = obs_report.diff_runs(args.baseline, args.candidate, **kwargs)
        print(obs_report.format_diff(diff))
        if args.gate and diff["regressions"]:
            print(
                f"obs diff gate: FAIL ({len(diff['regressions'])} "
                "regression(s))",
                file=sys.stderr,
            )
            return 1
        if args.gate:
            print("obs diff gate: ok", file=sys.stderr)
        return 0
    except FileNotFoundError as exc:
        # A run dir with no obs/ data: one clear line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profiler = None
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command in ("run", "sweep", "worker", "eval"):
            profiler = _setup_obs(args)
            try:
                if args.command == "run":
                    return _cmd_run(args)
                if args.command == "sweep":
                    return _cmd_sweep(args)
                if args.command == "eval":
                    return _cmd_eval(args)
                return _cmd_worker(args)
            finally:
                _finish_obs(args, profiler)
        if args.command == "queue":
            return _cmd_queue(args)
        if args.command == "checkpoints":
            return _cmd_checkpoints(args)
        if args.command == "results":
            return _cmd_results(args)
        if args.command == "obs":
            return _cmd_obs(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
