"""Flat torus: a modular d-dimensional space with wrap-around distances.

This is the space of the paper's evaluation (a logical 80x40 torus).  It
is the motivating example for using *medoids* instead of centroids: in a
modular space scalar division is ill defined (the paper's footnote 2:
``4 = 2*x (mod 16)`` has two solutions), so an arithmetic mean is not
meaningful — but the medoid only needs distances.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from ..types import Coord
from .base import VectorSpace


class FlatTorus(VectorSpace):
    """A d-dimensional flat torus with per-axis periods.

    ``FlatTorus(80, 40)`` is the paper's logical torus: coordinates live
    in ``[0, 80) x [0, 40)`` and distances wrap around both axes.
    """

    def __init__(self, *periods: float) -> None:
        if not periods:
            raise ValueError("FlatTorus needs at least one period")
        if any(p <= 0 for p in periods):
            raise ValueError("torus periods must be positive")
        super().__init__(dim=len(periods))
        self.periods: Tuple[float, ...] = tuple(float(p) for p in periods)
        self._periods_arr = np.asarray(self.periods, dtype=float)

    # -- geometry --------------------------------------------------------

    def wrap(self, coord: Coord) -> Coord:
        """Map any coordinate into the canonical cell ``[0, period)``."""
        return tuple(c % p for c, p in zip(coord, self.periods))

    @property
    def area(self) -> float:
        """Measure (area/volume) of the torus, used for the reference
        homogeneity ``H = 0.5 * sqrt(area / n_nodes)``."""
        return float(np.prod(self._periods_arr))

    @property
    def max_distance(self) -> float:
        """The diameter of the torus (half-period along every axis)."""
        return math.sqrt(sum((p / 2.0) ** 2 for p in self.periods))

    # -- metric ----------------------------------------------------------

    def distance(self, a: Coord, b: Coord) -> float:
        return math.sqrt(self.distance_sq(a, b))

    def distance_sq(self, a: Coord, b: Coord) -> float:
        total = 0.0
        for x, y, p in zip(a, b, self.periods):
            diff = abs(x - y) % p
            if diff > p / 2.0:
                diff = p - diff
            total += diff * diff
        return total

    def distance_many(self, origin: Coord, coords: Sequence[Coord]) -> np.ndarray:
        if len(coords) == 0:
            return np.empty(0, dtype=float)
        arr = self.pack(coords)
        diff = np.abs(arr - np.asarray(origin, dtype=float)) % self._periods_arr
        diff = np.minimum(diff, self._periods_arr - diff)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(f"{p:g}" for p in self.periods)
        return f"FlatTorus({dims})"
