"""Flat torus: a modular d-dimensional space with wrap-around distances.

This is the space of the paper's evaluation (a logical 80x40 torus).  It
is the motivating example for using *medoids* instead of centroids: in a
modular space scalar division is ill defined (the paper's footnote 2:
``4 = 2*x (mod 16)`` has two solutions), so an arithmetic mean is not
meaningful — but the medoid only needs distances.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..types import Coord
from .base import Batch, VectorSpace

#: Row-wise dot product for the ranking kernels: ``np.vecdot`` (NumPy
#: >= 2.0) saves one dispatch layer over ``einsum``.  Ranking consumers
#: only compare the values, and on canonical grid coordinates (exact
#: integer squares) both forms are bit-identical; the fallback keeps
#: older NumPy working.
_row_dot = getattr(np, "vecdot", None) or (
    lambda a, b: np.einsum("...j,...j->...", a, b)
)


class FlatTorus(VectorSpace):
    """A d-dimensional flat torus with per-axis periods.

    ``FlatTorus(80, 40)`` is the paper's logical torus: coordinates live
    in ``[0, 80) x [0, 40)`` and distances wrap around both axes.
    """

    def __init__(self, *periods: float) -> None:
        if not periods:
            raise ValueError("FlatTorus needs at least one period")
        if any(p <= 0 for p in periods):
            raise ValueError("torus periods must be positive")
        super().__init__(dim=len(periods))
        self.periods: Tuple[float, ...] = tuple(float(p) for p in periods)
        self._periods_arr = np.asarray(self.periods, dtype=float)

    # -- geometry --------------------------------------------------------

    def wrap(self, coord: Coord) -> Coord:
        """Map any coordinate into the canonical cell ``[0, period)``."""
        return tuple(c % p for c, p in zip(coord, self.periods))

    @property
    def area(self) -> float:
        """Measure (area/volume) of the torus, used for the reference
        homogeneity ``H = 0.5 * sqrt(area / n_nodes)``."""
        return float(np.prod(self._periods_arr))

    @property
    def max_distance(self) -> float:
        """The diameter of the torus (half-period along every axis)."""
        return math.sqrt(sum((p / 2.0) ** 2 for p in self.periods))

    # -- metric ----------------------------------------------------------

    def distance(self, a: Coord, b: Coord) -> float:
        return math.sqrt(self.distance_sq(a, b))

    def distance_sq(self, a: Coord, b: Coord) -> float:
        total = 0.0
        for x, y, p in zip(a, b, self.periods):
            diff = abs(x - y) % p
            if diff > p / 2.0:
                diff = p - diff
            total += diff * diff
        return total

    def distance_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        diff = self._folded_diff(origin, batch)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def distance_sq_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        diff = self._folded_diff(origin, batch)
        return np.einsum("ij,ij->i", diff, diff)

    def _folded_diff(self, origin: Coord, batch: Batch) -> np.ndarray:
        """Per-axis wrapped |Δ|, reusing one scratch array (the ufunc
        chain runs in place; the values match the scalar fold exactly)."""
        if not isinstance(origin, np.ndarray):
            origin = np.asarray(origin, dtype=float)
        periods = self._periods_arr
        diff = np.subtract(batch, origin)
        np.abs(diff, out=diff)
        np.mod(diff, periods, out=diff)
        return np.minimum(diff, periods - diff, out=diff)

    def rank_sq_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        """Squared wrapped distances for *canonical* coordinates (every
        component already in ``[0, period)``): ``|Δ|`` is then below the
        period, so the modular fold reduces to one ``minimum`` — the
        ``% period`` pass of the general kernel is the identity and is
        skipped.  Values are identical to :meth:`distance_sq_block` on
        such inputs."""
        if not isinstance(origin, np.ndarray):
            origin = np.asarray(origin, dtype=float)
        periods = self._periods_arr
        diff = np.subtract(batch, origin)
        np.abs(diff, out=diff)
        np.minimum(diff, periods - diff, out=diff)
        return _row_dot(diff, diff)

    def distance_rows(self, batch_a: Batch, batch_b: Batch) -> np.ndarray:
        batch_a = np.asarray(batch_a, dtype=float)
        batch_b = np.asarray(batch_b, dtype=float)
        total = None
        # Axis-split accumulation: per-axis contiguous slices vectorise
        # ~3x better than one fused (..., dim) reduction, and the
        # sequential sum keeps the values consistent with
        # :meth:`rank_sq_rows` (the batch merge ranks by one and the
        # legacy flat pipeline consumed the other).
        for d, p in enumerate(self.periods):
            diff = batch_a[..., d] - batch_b[..., d]
            np.abs(diff, out=diff)
            np.mod(diff, p, out=diff)
            np.minimum(diff, p - diff, out=diff)
            diff *= diff
            total = diff if total is None else np.add(total, diff, out=total)
        return np.sqrt(total, out=total)

    def rank_sq_rows(self, origins: Batch, batch: np.ndarray) -> np.ndarray:
        origins = np.asarray(origins, dtype=float)
        total = None
        # Same axis-split accumulation as :meth:`distance_rows`, minus
        # the ``% period`` fold (canonical coordinates — see
        # :meth:`rank_sq_block`).
        for d, p in enumerate(self.periods):
            diff = batch[..., d] - origins[..., d, None]
            np.abs(diff, out=diff)
            np.minimum(diff, p - diff, out=diff)
            diff *= diff
            total = diff if total is None else np.add(total, diff, out=total)
        return total

    def rank_sq_pools(self, pools: np.ndarray) -> np.ndarray:
        """Within-pool all-pairs ranks without the base class's
        materialised expansion: per-axis broadcasting on ``(n, m, m)``
        slices, same operation order as :meth:`rank_sq_rows` (``|Δ|``
        makes the subtraction orientation irrelevant), so the values
        are bit-identical to the default."""
        total = None
        for d, p in enumerate(self.periods):
            ax = pools[:, :, d]
            diff = ax[:, None, :] - ax[:, :, None]
            np.abs(diff, out=diff)
            np.minimum(diff, p - diff, out=diff)
            diff *= diff
            total = diff if total is None else np.add(total, diff, out=total)
        return total

    def pairwise_rank_sq(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        """All-pairs :meth:`rank_sq_block` (canonical coordinates)."""
        if other is None:
            other = batch
        periods = self._periods_arr
        diff = np.subtract(batch[:, None, :], other[None, :, :])
        np.abs(diff, out=diff)
        np.minimum(diff, periods - diff, out=diff)
        return _row_dot(diff, diff)

    def pairwise_canonical(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        """All-pairs distances for canonical coordinates: ``|Δ|`` is
        below the period, so the ``% period`` of the general fold is the
        numerical identity and is skipped — values are bit-identical to
        :meth:`pairwise` on such inputs."""
        if other is None:
            other = batch
        periods = self._periods_arr
        diff = np.subtract(batch[:, None, :], other[None, :, :])
        np.abs(diff, out=diff)
        np.minimum(diff, periods - diff, out=diff)
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def pairwise_sq(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        if other is None:
            other = batch
        diff = np.abs(batch[:, None, :] - other[None, :, :]) % self._periods_arr
        diff = np.minimum(diff, self._periods_arr - diff)
        return np.einsum("ijk,ijk->ij", diff, diff)

    def pairwise(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        if other is None:
            other = batch
        diff = np.abs(batch[:, None, :] - other[None, :, :]) % self._periods_arr
        diff = np.minimum(diff, self._periods_arr - diff)
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(f"{p:g}" for p in self.periods)
        return f"FlatTorus({dims})"
