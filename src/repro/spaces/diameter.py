"""Diameter of a point set: the farthest pair.

The PD heuristic of SPLIT_ADVANCED partitions the union of two guest
sets along one of its *diameters* — a pair ``(u, v)`` maximising
``d(u, v)`` (Sec. III-F).  Exact search is O(n^2) pairs; the paper notes
that for unions over ~30 points a sampled approximation is fine, which
:func:`diameter_sampled` provides.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import EmptySelectionError
from ..types import Coord
from .base import Space

#: Point-set size above which :func:`diameter` switches to sampling.
EXACT_THRESHOLD = 30


def diameter_exact(
    space: Space, coords: Sequence[Coord], batch=None
) -> Tuple[int, int]:
    """Indices ``(i, j)`` of an exact farthest pair (i < j).

    One batched all-pairs kernel call; the row-by-row argmax and
    strict-> update replicate the scalar scan, so the selected pair is
    identical.  Pass a pre-packed ``batch`` to reuse the caller's pack.
    """
    n = len(coords)
    if n < 2:
        raise EmptySelectionError("a diameter needs at least two points")
    # Squared distances: argmax/comparisons select the same pair, the
    # n^2 square roots are skipped.
    if batch is None:
        batch = space.pack_batch(coords)
    pair_dists = space.pairwise_rank_sq(batch)
    best = (0, 1)
    best_dist = -1.0
    for i in range(n - 1):
        dists = pair_dists[i, i + 1 :]
        j_rel = int(np.argmax(dists))
        if dists[j_rel] > best_dist:
            best_dist = float(dists[j_rel])
            best = (i, i + 1 + j_rel)
    return best


def diameter_sampled(
    space: Space,
    coords: Sequence[Coord],
    rng: Optional[np.random.Generator] = None,
    iterations: int = 3,
) -> Tuple[int, int]:
    """Approximate farthest pair by iterated farthest-point hops.

    Start from a point, jump to the point farthest from it, and repeat;
    each hop can only increase the spanned distance.  This classic
    2-approximation costs O(iterations * n) distance evaluations and is
    exact on most well-spread sets.
    """
    n = len(coords)
    if n < 2:
        raise EmptySelectionError("a diameter needs at least two points")
    if rng is None:
        i = 0
    else:
        i = int(rng.integers(n))
    batch = space.pack_batch(coords)
    best = (0, 1)
    best_dist = -1.0
    for _ in range(max(1, iterations)):
        dists = space.rank_sq_block(coords[i], batch)
        j = int(np.argmax(dists))
        if dists[j] > best_dist:
            best_dist = float(dists[j])
            best = (min(i, j), max(i, j))
        if j == i:
            break
        i = j
    return best


def diameter(
    space: Space,
    coords: Sequence[Coord],
    rng: Optional[np.random.Generator] = None,
    batch=None,
) -> Tuple[int, int]:
    """Farthest-pair indices: exact for small sets, sampled for large."""
    if len(coords) > EXACT_THRESHOLD:
        return diameter_sampled(space, coords, rng=rng)
    return diameter_exact(space, coords, batch=batch)
