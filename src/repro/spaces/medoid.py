"""Medoid computation.

The medoid of a point set S is the element of S that minimises the sum
of *squared* distances to the other elements (Sec. III-C):

    medoid(S) = argmin_{x0 in S}  sum_{x in S} d(x0, x)^2

Unlike a centroid it is always one of the input points, so it stays
meaningful in modular and non-vector spaces where division (and hence a
mean) is ill defined.

Exact computation is O(|S|^2) distance evaluations.  Guest sets in
Polystyrene stay small (about ``(K+1) / survival-ratio`` points), so the
exact form is the default; :func:`medoid_sampled` implements the paper's
suggested approximation for large sets (Sec. III-F mentions sampling for
sets over ~30 points).

Ties are broken deterministically by input order so that repeated runs
with the same seed are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import EmptySelectionError
from ..types import Coord
from .base import Space

#: Above this many points, :func:`medoid` transparently switches to the
#: sampled approximation (same threshold the paper suggests for the
#: diameter computation).
EXACT_THRESHOLD = 30


def sum_sq_distances(space: Space, origin: Coord, coords: Sequence[Coord]) -> float:
    """Sum of squared distances from ``origin`` to every coordinate."""
    dists = space.distance_many(origin, coords)
    return float(np.dot(dists, dists))


def medoid_exact(space: Space, coords: Sequence[Coord], batch=None) -> int:
    """Index of the exact medoid of ``coords``.

    One batched all-pairs kernel call replaces the n separate
    ``distance_many`` scans (and their n coordinate packs); the
    per-candidate cost and the strict-< first-winner selection are
    unchanged, so the chosen index is identical to the scalar loop.
    Pass a pre-packed ``batch`` to reuse the caller's pack.

    Raises :class:`EmptySelectionError` on an empty input.
    """
    if not coords:
        raise EmptySelectionError("medoid of an empty set is undefined")
    if len(coords) <= 2:
        # One point is its own medoid; of two points both costs are the
        # same single squared distance, so the first wins the strict-<
        # scan exactly as it would in the full loop.
        return 0
    if batch is None:
        batch = space.pack_batch(coords)
    dists = space.pairwise_canonical(batch)
    best_idx = 0
    best_cost = float("inf")
    for i in range(len(coords)):
        row = dists[i]
        cost = np.dot(row, row)
        if cost < best_cost:
            best_cost = cost
            best_idx = i
    return best_idx


def medoid_sampled(
    space: Space,
    coords: Sequence[Coord],
    sample_size: int = EXACT_THRESHOLD,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Approximate medoid: score every point against a random sample.

    Each candidate's cost is estimated on ``sample_size`` reference
    points instead of the full set, dropping the complexity from
    O(n^2) to O(n * sample_size).  With ``rng=None`` the first
    ``sample_size`` points are used, keeping the function deterministic.
    """
    if not coords:
        raise EmptySelectionError("medoid of an empty set is undefined")
    n = len(coords)
    if n <= sample_size:
        return medoid_exact(space, coords)
    if rng is None:
        sample_idx: List[int] = list(range(sample_size))
    else:
        sample_idx = list(rng.choice(n, size=sample_size, replace=False))
    sample = [coords[i] for i in sample_idx]
    dists = space.pairwise_canonical(space.pack_batch(coords), space.pack_batch(sample))
    best_idx = 0
    best_cost = float("inf")
    for i in range(n):
        row = dists[i]
        cost = float(np.dot(row, row))
        if cost < best_cost:
            best_cost = cost
            best_idx = i
    return best_idx


def medoid(
    space: Space,
    coords: Sequence[Coord],
    rng: Optional[np.random.Generator] = None,
    batch=None,
) -> Coord:
    """The medoid coordinate of ``coords`` (exact below
    :data:`EXACT_THRESHOLD` points, sampled above)."""
    if len(coords) > EXACT_THRESHOLD:
        return coords[medoid_sampled(space, coords, rng=rng)]
    return coords[medoid_exact(space, coords, batch=batch)]
