"""Metric-space abstraction.

The paper only requires that "a distance can be computed between any two
data points (i.e. it is a metric space)" (Sec. III-A).  Everything above
this module — T-Man, the split functions, the metrics — is written
against :class:`Space` and works unchanged in any of the concrete spaces
shipped in this subpackage (Euclidean plane, flat torus, ring, set space
with Jaccard distance).

Concrete spaces must implement the scalar :meth:`Space.distance`.  The
batched kernels — :meth:`Space.distance_block`, :meth:`Space.pairwise`
and :meth:`Space.knn_indices` — have generic scalar fallbacks, but the
shipped spaces override them with array implementations because they
sit on the simulator's hot path (T-Man ranks ~100 candidates per node
per round, the SPLIT heuristics need all-pairs distances of the pooled
guest sets).  The kernels operate on *pre-packed batches*
(:meth:`Space.pack_batch`): an ``(n, dim)`` float array for vector
spaces, a plain sequence of coordinate objects otherwise.  Callers that
keep their coordinates in contiguous arrays (the
:class:`~repro.sim.arrays.NodeTable` columns, the per-view coordinate
buffers) hand them to the kernels directly, with no per-call
list → ``np.asarray`` conversion.

The batched kernels are *float-identical* to the scalar path for the
shipped spaces: the property tests in ``tests/test_prop_kernels.py``
pin batched-vs-scalar equivalence for every space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import SpaceMismatchError
from ..types import Coord

#: A pre-packed coordinate batch: ``(n, dim)`` float array for vector
#: spaces, a sequence of coordinate objects for the rest.
Batch = Union[np.ndarray, Sequence[Coord]]


class Space(ABC):
    """A metric space over coordinates.

    Subclasses define :attr:`dim` (``None`` for non-vector spaces such as
    the Jaccard set space) and the distance function.  The distance must
    satisfy the metric axioms; the test suite checks them property-based
    for every shipped space.
    """

    #: Number of components of a coordinate, or ``None`` when coordinates
    #: are not fixed-size vectors (e.g. sets of items).
    dim: Optional[int] = None

    @abstractmethod
    def distance(self, a: Coord, b: Coord) -> float:
        """Return the distance between two coordinates."""

    def distance_sq(self, a: Coord, b: Coord) -> float:
        """Squared distance; override when it can skip a square root."""
        d = self.distance(a, b)
        return d * d

    def distance_many(self, origin: Coord, coords: Sequence[Coord]) -> np.ndarray:
        """Distances from ``origin`` to every coordinate in ``coords``.

        Convenience wrapper: packs the coordinates and delegates to
        :meth:`distance_block`.  Hot paths that already hold a packed
        batch should call :meth:`distance_block` directly.
        """
        if len(coords) == 0:
            return np.empty(0, dtype=float)
        return self.distance_block(origin, self.pack_batch(coords))

    # -- batched kernels -------------------------------------------------

    def pack_batch(self, coords: Sequence[Coord]) -> Batch:
        """Pack coordinates into the space's batch layout.

        Generic spaces batch as a plain list; vector spaces as an
        ``(n, dim)`` float array.  A batch is reusable across any number
        of kernel calls — pack once, query many times.
        """
        if isinstance(coords, list):
            return coords
        return list(coords)

    def distance_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        """Distances from ``origin`` to every row of a packed batch.

        Float-identical to calling :meth:`distance` per row (the
        generic fallback does exactly that; array overrides must keep
        per-row float operation order identical).
        """
        return np.array([self.distance(origin, c) for c in batch], dtype=float)

    def distance_sq_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        """Squared distances from ``origin`` to every batch row.

        The ranking kernel: sorting or comparing by squared distance
        selects what sorting by distance selects, one ufunc pass
        cheaper.  Precisely: ``sqrt`` is weakly monotone in float64, so
        the two orders can only differ where two true distances agree
        to within one ulp while the squares do not (or vice versa for
        metrics computed via ``d*d``).  For coordinates whose squared
        distances are exactly representable — every grid scenario, and
        hence every golden digest — the equivalence is bit-exact.
        """
        return np.array([self.distance_sq(origin, c) for c in batch], dtype=float)

    def pairwise_sq(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        """All-pairs *squared* distance matrix (comparison/ordering
        uses; see :meth:`distance_sq_block`)."""
        if other is None:
            other = batch
        n = len(batch)
        out = np.empty((n, len(other)), dtype=float)
        for i in range(n):
            out[i] = self.distance_sq_block(batch[i], other)
        return out

    def distance_rows(self, batch_a: Batch, batch_b: Batch) -> np.ndarray:
        """Row-paired distances: ``out[i] = distance(batch_a[i],
        batch_b[i])``.  Float-identical to the scalar call per row (the
        generic fallback does exactly that; array overrides must keep
        per-row float operation order identical).  The kernel behind the
        single-holder homogeneity scan and the per-receiver merge
        rankings of the batch engine."""
        return np.array(
            [self.distance(a, b) for a, b in zip(batch_a, batch_b)], dtype=float
        )

    def rank_sq_rows(self, origins: Batch, batch: np.ndarray) -> np.ndarray:
        """Per-row-origin squared rank distances under the canonical-
        coordinates precondition: ``origins`` is ``(n, dim)`` and
        ``batch`` is ``(n, m, dim)``; ``out[i, j] =
        rank_sq(origins[i], batch[i, j])``.  The batch engine's workhorse:
        every node ranks *its own* candidate block against *its own*
        position in one call."""
        return np.stack(
            [self.rank_sq_block(origin, rows) for origin, rows in zip(origins, batch)]
        ) if len(batch) else np.empty((0,) + np.shape(batch)[1:2], dtype=float)

    def rank_sq_pools(self, pools: np.ndarray) -> np.ndarray:
        """All-pairs squared rank distances *within* each pool of a
        padded ``(n, m, dim)`` block: ``out[i, j, k] =
        rank_sq(pools[i, j], pools[i, k])`` (the batch SPLIT kernel).
        The default routes through :meth:`rank_sq_rows`; spaces with
        broadcastable kernels override to skip the materialised
        ``(n*m, m, dim)`` expansion, keeping values identical."""
        n, m, d = pools.shape
        origins = pools.reshape(n * m, d)
        blocks = np.broadcast_to(pools[:, None, :, :], (n, m, m, d)).reshape(
            n * m, m, d
        )
        return self.rank_sq_rows(origins, blocks).reshape(n, m, m)

    def rank_sq_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        """:meth:`distance_sq_block` under the *canonical-coordinates*
        precondition: every input is a coordinate the space itself
        produced (grid positions, wrapped reinjection points, medoids of
        such points — i.e. everything the simulator ever stores).
        Spaces whose general kernel spends work on re-normalising
        arbitrary inputs (the modular fold of the torus) override this
        with a cheaper equivalent; on canonical inputs the values are
        identical."""
        return self.distance_sq_block(origin, batch)

    def pairwise_rank_sq(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        """:meth:`pairwise_sq` under the canonical-coordinates
        precondition (see :meth:`rank_sq_block`)."""
        return self.pairwise_sq(batch, other)

    def pairwise_canonical(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        """:meth:`pairwise` under the canonical-coordinates
        precondition.  Unlike the ``rank_*`` kernels the *values* are
        consumed (medoid costs), so overrides may only skip work that is
        the numerical identity on canonical inputs (e.g. the torus
        fold's ``% period`` pass) — results are bit-identical to
        :meth:`pairwise` there."""
        return self.pairwise(batch, other)

    def pairwise(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        """All-pairs distance matrix ``(len(batch), len(other))``
        (``other`` defaults to ``batch``).  Row ``i`` is float-identical
        to ``distance_block(batch[i], other)``."""
        if other is None:
            other = batch
        n = len(batch)
        out = np.empty((n, len(other)), dtype=float)
        for i in range(n):
            out[i] = self.distance_block(batch[i], other)
        return out

    def knn_indices(
        self, origin: Coord, batch: Batch, k: int
    ) -> np.ndarray:
        """Indices of the ``k`` batch rows closest to ``origin``,
        closest first, ties broken by index (deterministic)."""
        if k <= 0 or len(batch) == 0:
            return np.empty(0, dtype=np.int64)
        dists = self.distance_block(origin, batch)
        order = np.lexsort((np.arange(len(dists)), dists))
        return order[: min(k, len(dists))]

    def check_coord(self, coord: Coord) -> Coord:
        """Validate a coordinate's dimensionality against this space."""
        if self.dim is not None and len(coord) != self.dim:
            raise SpaceMismatchError(
                f"expected a {self.dim}-component coordinate, got {len(coord)}"
            )
        return coord

    # -- convenience helpers used throughout the library ----------------

    def nearest(self, origin: Coord, coords: Sequence[Coord]) -> int:
        """Index of the coordinate in ``coords`` closest to ``origin``."""
        if not coords:
            raise ValueError("nearest() needs at least one candidate")
        dists = self.distance_many(origin, coords)
        return int(np.argmin(dists))

    def k_nearest(
        self, origin: Coord, coords: Sequence[Coord], k: int
    ) -> List[int]:
        """Indices of the ``k`` closest coordinates, closest first."""
        if k <= 0:
            return []
        dists = self.distance_many(origin, coords)
        k = min(k, len(coords))
        order = np.argpartition(dists, k - 1)[:k]
        return [int(i) for i in order[np.argsort(dists[order])]]

    def mean_distance(self, origin: Coord, coords: Iterable[Coord]) -> float:
        """Average distance from ``origin`` to a collection of coords."""
        coords = list(coords)
        if not coords:
            return 0.0
        return float(np.mean(self.distance_many(origin, coords)))


class VectorSpace(Space):
    """Base class for spaces whose coordinates are fixed-size float tuples.

    Provides coordinate-array packing shared by the Euclidean and modular
    spaces.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError("a vector space needs dim >= 1")
        self.dim = dim

    @staticmethod
    def pack(coords: Sequence[Coord]) -> np.ndarray:
        """Stack coordinates into an ``(n, dim)`` float array."""
        return np.asarray(coords, dtype=float)

    def pack_batch(self, coords: Sequence[Coord]) -> np.ndarray:
        """Vector batches are ``(n, dim)`` float arrays; an array passed
        in is used as-is (zero-copy).

        """
        if isinstance(coords, np.ndarray) and coords.dtype == np.float64:
            return coords
        return np.asarray(coords, dtype=float).reshape(len(coords), self.dim)
