"""Metric-space abstraction.

The paper only requires that "a distance can be computed between any two
data points (i.e. it is a metric space)" (Sec. III-A).  Everything above
this module — T-Man, the split functions, the metrics — is written
against :class:`Space` and works unchanged in any of the concrete spaces
shipped in this subpackage (Euclidean plane, flat torus, ring, set space
with Jaccard distance).

Concrete spaces must implement the scalar :meth:`Space.distance`.  The
vectorised :meth:`Space.distance_many` has a generic fallback but the
numeric spaces override it with numpy implementations because it sits on
the simulator's hot path (T-Man ranks ~100 candidates per node per
round).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..errors import SpaceMismatchError
from ..types import Coord


class Space(ABC):
    """A metric space over coordinates.

    Subclasses define :attr:`dim` (``None`` for non-vector spaces such as
    the Jaccard set space) and the distance function.  The distance must
    satisfy the metric axioms; the test suite checks them property-based
    for every shipped space.
    """

    #: Number of components of a coordinate, or ``None`` when coordinates
    #: are not fixed-size vectors (e.g. sets of items).
    dim: Optional[int] = None

    @abstractmethod
    def distance(self, a: Coord, b: Coord) -> float:
        """Return the distance between two coordinates."""

    def distance_sq(self, a: Coord, b: Coord) -> float:
        """Squared distance; override when it can skip a square root."""
        d = self.distance(a, b)
        return d * d

    def distance_many(self, origin: Coord, coords: Sequence[Coord]) -> np.ndarray:
        """Distances from ``origin`` to every coordinate in ``coords``.

        The generic fallback just loops; numeric spaces override this
        with a vectorised implementation.
        """
        return np.array([self.distance(origin, c) for c in coords], dtype=float)

    def check_coord(self, coord: Coord) -> Coord:
        """Validate a coordinate's dimensionality against this space."""
        if self.dim is not None and len(coord) != self.dim:
            raise SpaceMismatchError(
                f"expected a {self.dim}-component coordinate, got {len(coord)}"
            )
        return coord

    # -- convenience helpers used throughout the library ----------------

    def nearest(self, origin: Coord, coords: Sequence[Coord]) -> int:
        """Index of the coordinate in ``coords`` closest to ``origin``."""
        if not coords:
            raise ValueError("nearest() needs at least one candidate")
        dists = self.distance_many(origin, coords)
        return int(np.argmin(dists))

    def k_nearest(
        self, origin: Coord, coords: Sequence[Coord], k: int
    ) -> List[int]:
        """Indices of the ``k`` closest coordinates, closest first."""
        if k <= 0:
            return []
        dists = self.distance_many(origin, coords)
        k = min(k, len(coords))
        order = np.argpartition(dists, k - 1)[:k]
        return [int(i) for i in order[np.argsort(dists[order])]]

    def mean_distance(self, origin: Coord, coords: Iterable[Coord]) -> float:
        """Average distance from ``origin`` to a collection of coords."""
        coords = list(coords)
        if not coords:
            return 0.0
        return float(np.mean(self.distance_many(origin, coords)))


class VectorSpace(Space):
    """Base class for spaces whose coordinates are fixed-size float tuples.

    Provides coordinate-array packing shared by the Euclidean and modular
    spaces.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError("a vector space needs dim >= 1")
        self.dim = dim

    @staticmethod
    def pack(coords: Sequence[Coord]) -> np.ndarray:
        """Stack coordinates into an ``(n, dim)`` float array."""
        return np.asarray(coords, dtype=float)
