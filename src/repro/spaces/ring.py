"""One-dimensional ring (circle) space.

A 1-D modular space, the natural home of Chord/Pastry-style key rings.
Functionally a :class:`~repro.spaces.torus.FlatTorus` with a single
period, but shipped separately because ring overlays are the most common
deployment target and deserve a first-class name in the API.
"""

from __future__ import annotations

from ..types import Coord
from .torus import FlatTorus


class Ring(FlatTorus):
    """Circle of a given circumference with wrap-around distance."""

    def __init__(self, circumference: float = 1.0) -> None:
        super().__init__(circumference)
        self.circumference = float(circumference)

    def position(self, fraction: float) -> Coord:
        """Coordinate at ``fraction`` (in [0, 1)) of the way around."""
        return (self.wrap((fraction * self.circumference,)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ring(circumference={self.circumference:g})"
