"""Set space with Jaccard distance.

The paper notes a data point can be "a list of items" taken from "the
power-set of items" (Sec. III-A) — the profile spaces of gossip-based
recommenders (Gossple, WhatsUp).  This space makes Polystyrene usable on
such profiles: coordinates are frozensets of hashable items and distance
is the Jaccard distance, a proper metric on finite sets.

There is no meaningful arithmetic mean of sets, so this space is the
second motivating example (after the torus) for the medoid projection.

Unlike the vector spaces, set coordinates cannot be packed into a float
matrix, so the batched kernels here work on plain sequences of
frozensets: the intersection/union sizes are integers, computed with C
set operations, and the float division happens once over the whole
batch — float-identical to the scalar ``1 - |A∩B| / |A∪B|`` while
avoiding a Python-level distance call per pair.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from .base import Batch, Space

SetCoord = FrozenSet[Hashable]


def _as_sets(batch: Sequence[SetCoord]) -> List[SetCoord]:
    return batch if isinstance(batch, list) else list(batch)


class JaccardSpace(Space):
    """Power-set of items with the Jaccard distance ``1 - |A∩B|/|A∪B|``."""

    dim = None

    def distance(self, a: SetCoord, b: SetCoord) -> float:  # type: ignore[override]
        if not a and not b:
            return 0.0
        inter = len(a & b)
        union = len(a) + len(b) - inter
        return 1.0 - inter / union

    def distance_sq(self, a: SetCoord, b: SetCoord) -> float:  # type: ignore[override]
        """Squared Jaccard distance, computed from the set sizes
        directly (the base-class fallback would square a float that was
        itself derived from the same integers — identical value, one
        call less)."""
        if not a and not b:
            return 0.0
        inter = len(a & b)
        union = len(a) + len(b) - inter
        d = 1.0 - inter / union
        return d * d

    # -- batched kernels ---------------------------------------------------

    def pack_batch(self, coords: Sequence[SetCoord]) -> List[SetCoord]:
        return _as_sets(coords)

    def distance_block(self, origin: SetCoord, batch: Batch) -> np.ndarray:
        """Jaccard distances from one set to a batch of sets.

        The per-pair work (two ``len`` calls and one C-level set
        intersection) is collected into integer arrays; the float
        arithmetic runs once, vectorised, and matches the scalar
        formula bit for bit (same integers, same division).
        """
        sets = _as_sets(batch)
        n = len(sets)
        if n == 0:
            return np.empty(0, dtype=float)
        inter = np.fromiter(
            (len(origin & s) for s in sets), dtype=np.int64, count=n
        )
        sizes = np.fromiter((len(s) for s in sets), dtype=np.int64, count=n)
        union = len(origin) + sizes - inter
        out = np.ones(n, dtype=float)
        nonempty = union > 0
        out[nonempty] = 1.0 - inter[nonempty] / union[nonempty]
        out[~nonempty] = 0.0  # both sets empty -> distance 0
        return out

    def distance_sq_block(self, origin: SetCoord, batch: Batch) -> np.ndarray:
        d = self.distance_block(origin, batch)
        return d * d

    def pairwise(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        rows = _as_sets(batch)
        cols = rows if other is None else _as_sets(other)
        out = np.empty((len(rows), len(cols)), dtype=float)
        for i, origin in enumerate(rows):
            out[i] = self.distance_block(origin, cols)
        return out

    @staticmethod
    def coord(items: Iterable[Hashable]) -> SetCoord:
        """Build a set-space coordinate from any iterable of items."""
        return frozenset(items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "JaccardSpace()"
