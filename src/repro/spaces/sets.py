"""Set space with Jaccard distance.

The paper notes a data point can be "a list of items" taken from "the
power-set of items" (Sec. III-A) — the profile spaces of gossip-based
recommenders (Gossple, WhatsUp).  This space makes Polystyrene usable on
such profiles: coordinates are frozensets of hashable items and distance
is the Jaccard distance, a proper metric on finite sets.

There is no meaningful arithmetic mean of sets, so this space is the
second motivating example (after the torus) for the medoid projection.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable

from .base import Space

SetCoord = FrozenSet[Hashable]


class JaccardSpace(Space):
    """Power-set of items with the Jaccard distance ``1 - |A∩B|/|A∪B|``."""

    dim = None

    def distance(self, a: SetCoord, b: SetCoord) -> float:  # type: ignore[override]
        if not a and not b:
            return 0.0
        inter = len(a & b)
        union = len(a) + len(b) - inter
        return 1.0 - inter / union

    @staticmethod
    def coord(items: Iterable[Hashable]) -> SetCoord:
        """Build a set-space coordinate from any iterable of items."""
        return frozenset(items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "JaccardSpace()"
