"""The ordinary Euclidean space R^d."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..types import Coord
from .base import Batch, VectorSpace


class Euclidean(VectorSpace):
    """R^d with the standard L2 distance.

    This is the space used when positions are free vectors (no wrap
    around).  Division is well defined here, so the *centroid* projection
    is also meaningful (see :mod:`repro.core.projection` for the
    medoid-vs-centroid ablation).
    """

    def __init__(self, dim: int = 2) -> None:
        super().__init__(dim)

    def distance(self, a: Coord, b: Coord) -> float:
        return math.sqrt(self.distance_sq(a, b))

    def distance_sq(self, a: Coord, b: Coord) -> float:
        total = 0.0
        for x, y in zip(a, b):
            diff = x - y
            total += diff * diff
        return total

    def distance_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        if not isinstance(origin, np.ndarray):
            origin = np.asarray(origin, dtype=float)
        diff = batch - origin
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def distance_sq_block(self, origin: Coord, batch: Batch) -> np.ndarray:
        if not isinstance(origin, np.ndarray):
            origin = np.asarray(origin, dtype=float)
        diff = batch - origin
        return np.einsum("ij,ij->i", diff, diff)

    def pairwise_sq(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        if other is None:
            other = batch
        diff = batch[:, None, :] - other[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)

    def pairwise(self, batch: Batch, other: Optional[Batch] = None) -> np.ndarray:
        if other is None:
            other = batch
        diff = batch[:, None, :] - other[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def distance_rows(self, batch_a: Batch, batch_b: Batch) -> np.ndarray:
        diff = np.asarray(batch_a, dtype=float) - np.asarray(batch_b, dtype=float)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def rank_sq_rows(self, origins: Batch, batch: np.ndarray) -> np.ndarray:
        diff = batch - np.asarray(origins, dtype=float)[:, None, :]
        return np.einsum("ijk,ijk->ij", diff, diff)

    def centroid(self, coords: Sequence[Coord]) -> Coord:
        """Arithmetic mean of the coordinates (well defined in R^d)."""
        if not coords:
            raise ValueError("centroid of an empty set is undefined")
        arr = self.pack(coords)
        return tuple(float(c) for c in arr.mean(axis=0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Euclidean(dim={self.dim})"
