"""The ordinary Euclidean space R^d."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..types import Coord
from .base import VectorSpace


class Euclidean(VectorSpace):
    """R^d with the standard L2 distance.

    This is the space used when positions are free vectors (no wrap
    around).  Division is well defined here, so the *centroid* projection
    is also meaningful (see :mod:`repro.core.projection` for the
    medoid-vs-centroid ablation).
    """

    def __init__(self, dim: int = 2) -> None:
        super().__init__(dim)

    def distance(self, a: Coord, b: Coord) -> float:
        return math.sqrt(self.distance_sq(a, b))

    def distance_sq(self, a: Coord, b: Coord) -> float:
        total = 0.0
        for x, y in zip(a, b):
            diff = x - y
            total += diff * diff
        return total

    def distance_many(self, origin: Coord, coords: Sequence[Coord]) -> np.ndarray:
        if len(coords) == 0:
            return np.empty(0, dtype=float)
        arr = self.pack(coords)
        diff = arr - np.asarray(origin, dtype=float)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def centroid(self, coords: Sequence[Coord]) -> Coord:
        """Arithmetic mean of the coordinates (well defined in R^d)."""
        if not coords:
            raise ValueError("centroid of an empty set is undefined")
        arr = self.pack(coords)
        return tuple(float(c) for c in arr.mean(axis=0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Euclidean(dim={self.dim})"
