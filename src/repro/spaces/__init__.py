"""Metric spaces and geometric utilities (medoid, diameter).

The paper only assumes data points live in *some* metric space
(Sec. III-A).  This subpackage ships the spaces used in the evaluation
(the flat torus) plus the other spaces the paper motivates (Euclidean
vectors, rings, item-set profiles with Jaccard distance), and the two
geometric primitives the protocol relies on: medoids (projection) and
diameters (the PD split heuristic).
"""

from .base import Space, VectorSpace
from .diameter import diameter, diameter_exact, diameter_sampled
from .euclidean import Euclidean
from .medoid import medoid, medoid_exact, medoid_sampled, sum_sq_distances
from .ring import Ring
from .sets import JaccardSpace
from .torus import FlatTorus

__all__ = [
    "Space",
    "VectorSpace",
    "Euclidean",
    "FlatTorus",
    "Ring",
    "JaccardSpace",
    "medoid",
    "medoid_exact",
    "medoid_sampled",
    "sum_sq_distances",
    "diameter",
    "diameter_exact",
    "diameter_sampled",
]
