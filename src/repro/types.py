"""Shared primitive types used across the whole library.

The simulator, the gossip substrates and the Polystyrene layer all talk
about three kinds of values:

* :data:`NodeId` — the identity of a (physical) node in the network.
* :data:`PointId` — the identity of a *data point*, the passive position
  record that Polystyrene decouples from nodes.
* :data:`Coord` — a coordinate in whatever metric space the deployment
  uses (a tuple of floats for the Euclidean/torus spaces shipped here).

Data points are immutable: once created, a point's coordinate never
changes.  Only its *holders* change as the protocol migrates, replicates
and recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

NodeId = int
PointId = int
Coord = Tuple[float, ...]


@dataclass(frozen=True)
class DataPoint:
    """A passive position record.

    A :class:`DataPoint` has no behaviour and executes no protocol — it is
    pure data (Sec. II-C of the paper).  Identity is the ``pid``: two
    point objects with the same ``pid`` are the same logical point, which
    is what lets the migration step de-duplicate redundant copies simply
    by taking set unions keyed on ``pid``.
    """

    pid: PointId
    coord: Coord

    def __post_init__(self) -> None:
        # Normalise mutable sequences to tuples; leave non-sequence
        # coordinates (e.g. frozensets in the Jaccard space) untouched.
        if isinstance(self.coord, list):
            object.__setattr__(self, "coord", tuple(self.coord))

    def __hash__(self) -> int:
        return hash(self.pid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataPoint):
            return NotImplemented
        return self.pid == other.pid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        coord = ", ".join(f"{c:g}" for c in self.coord)
        return f"DataPoint({self.pid}, ({coord}))"


def as_coord(value) -> Coord:
    """Normalise any sequence of numbers into a :data:`Coord` tuple."""
    coord = tuple(float(c) for c in value)
    if not coord:
        raise ValueError("a coordinate needs at least one component")
    return coord
